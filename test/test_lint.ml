(* DLint framework tests: one seeded-violation fixture per pass under
   lint_fixtures/ (laid out as lib/ and examples/ subtrees so pass
   scoping applies exactly as it does on the real source), plus the
   clean-run regression over the repo's actual lib/ tree. *)

module Dlint = Drust_lint.Dlint
module Lint = Drust_lint.Lint

let fx sub = Filename.concat "lint_fixtures" sub
let run ?only ?table paths = Dlint.run ?only ?table ~paths ()

let triples res =
  List.map
    (fun (d : Lint.diagnostic) -> (d.Lint.d_pass, d.Lint.d_line, d.Lint.d_col))
    res.Dlint.diagnostics

let triple_t = Alcotest.(triple string int int)

let check_triples what want res =
  Alcotest.check (Alcotest.list triple_t) what want (triples res)

(* --- one fixture per pass ------------------------------------------ *)

let test_determinism_fixture () =
  check_triples "determinism findings"
    [
      ("determinism", 3, 14); (* Random.self_init *)
      ("determinism", 4, 13); (* Unix.gettimeofday *)
      ("determinism", 5, 17); (* Hashtbl.iter *)
      ("determinism", 6, 25); (* polymorphic compare *)
      ("determinism", 7, 15); (* Hashtbl.hash *)
      ("determinism", 8, 17); (* == *)
      ("determinism", 9, 13); (* Obj.magic *)
    ]
    (run [ fx "lib/det_violation.ml" ])

let test_globals_fixture () =
  (* The multi-line binding and the submodule binding are the shapes the
     old regex lint missed. *)
  check_triples "globals findings"
    [ ("globals", 5, 0); ("globals", 9, 2) ]
    (run [ fx "lib/globals_violation.ml" ])

let test_ownership_borrow_escape () =
  let res = run [ fx "examples/borrow_escape.ml" ] in
  check_triples "borrow escape" [ ("ownership", 3, 36) ] res;
  match res.Dlint.diagnostics with
  | [ d ] ->
      Alcotest.(check bool) "names the sink" true
        (Astring.String.is_infix ~affix:"Hashtbl.add" d.Lint.d_message)
  | _ -> Alcotest.fail "expected exactly one diagnostic"

let test_ownership_lock_leak () =
  check_triples "lock without unlock"
    [ ("ownership", 4, 2) ]
    (run [ fx "lib/lock_leak.ml" ])

let test_hygiene_stale_allow () =
  let res = run [ fx "lib/stale_allow.ml" ] in
  check_triples "stale allow" [ ("hygiene", 5, 2) ] res;
  match res.Dlint.diagnostics with
  | [ d ] ->
      Alcotest.(check bool) "says stale" true
        (Astring.String.is_infix ~affix:"stale" d.Lint.d_message)
  | _ -> Alcotest.fail "expected exactly one diagnostic"

let test_hygiene_bad_payloads () =
  check_triples "malformed payloads"
    [ ("hygiene", 3, 16); ("hygiene", 4, 16); ("hygiene", 5, 16) ]
    (run [ fx "lib/bad_payload.ml" ])

let test_clean_file_with_used_allow () =
  let res = run [ fx "lib/clean_allow.ml" ] in
  check_triples "no findings" [] res;
  Alcotest.(check int) "one allow" 1 res.Dlint.allows_total;
  Alcotest.(check int) "allow used" 1 res.Dlint.allows_used

(* --- corpus and runner behavior ------------------------------------ *)

let test_corpus_walk () =
  let res = run [ "lint_fixtures" ] in
  Alcotest.(check int) "files walked" 7 res.Dlint.files_scanned;
  Alcotest.(check int) "all seeded findings" 15
    (List.length res.Dlint.diagnostics)

let test_only_selects_one_pass () =
  let res = run ~only:"determinism" [ "lint_fixtures" ] in
  Alcotest.(check int) "determinism findings only" 7
    (List.length res.Dlint.diagnostics);
  List.iter
    (fun (d : Lint.diagnostic) ->
      Alcotest.(check string) "pass id" "determinism" d.Lint.d_pass)
    res.Dlint.diagnostics

let test_only_hygiene_skips_stales_of_unran_passes () =
  (* Under --only hygiene the determinism pass does not run, so its
     allows cannot be proven stale — but malformed payloads are still
     payload errors. *)
  check_triples "no stale report" [] (run ~only:"hygiene" [ fx "lib/stale_allow.ml" ]);
  Alcotest.(check int) "payload errors still reported" 3
    (List.length
       (run ~only:"hygiene" [ fx "lib/bad_payload.ml" ]).Dlint.diagnostics)

let test_only_unknown_pass_rejected () =
  match run ~only:"nosuchpass" [ fx "lib/clean_allow.ml" ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_table_exemption_suppresses () =
  let table = [ ("lib/det_violation.ml", "determinism", "fixture corpus") ] in
  let res = run ~table [ fx "lib/det_violation.ml" ] in
  check_triples "suppressed by table" [] res;
  Alcotest.(check int) "entry counted" 1 res.Dlint.allows_total;
  Alcotest.(check int) "entry used" 1 res.Dlint.allows_used

let test_table_stale_entry_reported () =
  let table = [ ("lib/clean_allow.ml", "globals", "nothing to suppress") ] in
  let res = run ~table [ fx "lib/clean_allow.ml" ] in
  match res.Dlint.diagnostics with
  | [ d ] ->
      Alcotest.(check string) "hygiene" "hygiene" d.Lint.d_pass;
      Alcotest.(check bool) "says stale table entry" true
        (Astring.String.is_infix ~affix:"stale exemption table entry"
           d.Lint.d_message)
  | ds ->
      Alcotest.failf "expected one stale-table diagnostic, got %d"
        (List.length ds)

(* --- clean-run regression over the real source ---------------------- *)

let test_repo_lib_is_clean () =
  (* The real lib/ tree (copied next to the test by dune) must stay
     clean: any new finding is either a real bug or needs a reasoned
     allow at the use site. *)
  let res = run [ "../lib" ] in
  List.iter
    (fun (d : Lint.diagnostic) -> print_endline (Lint.pp_diag d))
    res.Dlint.diagnostics;
  Alcotest.(check int) "no findings in lib/" 0
    (List.length res.Dlint.diagnostics);
  Alcotest.(check bool) "scanned a real tree" true (res.Dlint.files_scanned > 40)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "determinism" `Quick test_determinism_fixture;
          Alcotest.test_case "globals" `Quick test_globals_fixture;
          Alcotest.test_case "ownership: borrow escape" `Quick
            test_ownership_borrow_escape;
          Alcotest.test_case "ownership: lock leak" `Quick
            test_ownership_lock_leak;
          Alcotest.test_case "hygiene: stale allow" `Quick
            test_hygiene_stale_allow;
          Alcotest.test_case "hygiene: bad payloads" `Quick
            test_hygiene_bad_payloads;
          Alcotest.test_case "clean file, used allow" `Quick
            test_clean_file_with_used_allow;
        ] );
      ( "runner",
        [
          Alcotest.test_case "corpus walk" `Quick test_corpus_walk;
          Alcotest.test_case "--only selects one pass" `Quick
            test_only_selects_one_pass;
          Alcotest.test_case "--only hygiene staleness gating" `Quick
            test_only_hygiene_skips_stales_of_unran_passes;
          Alcotest.test_case "--only unknown pass" `Quick
            test_only_unknown_pass_rejected;
          Alcotest.test_case "table exemption" `Quick
            test_table_exemption_suppresses;
          Alcotest.test_case "table staleness" `Quick
            test_table_stale_entry_reported;
        ] );
      ( "regression",
        [ Alcotest.test_case "lib/ is clean" `Quick test_repo_lib_is_clean ] );
    ]
