(* Tests for the flight recorder (lib/obs/flight): the per-node black-box
   rings, the versioned dump codec, automatic dumps on failure, and the
   forensics timeline renderers.

   The last test is the seeded regression the ISSUE pins: a real protocol
   workload plus an injected DSan stale-cache-read violation must
   auto-write a *.flight.json dump from which the ownership timeline of
   the offending object is reconstructed — from the dump alone, no
   re-run. *)

module Flight = Drust_obs.Flight
module Engine = Drust_sim.Engine
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module P = Drust_core.Protocol
module Gaddr = Drust_memory.Gaddr
module Cache = Drust_memory.Cache
module Univ = Drust_util.Univ
module Dsan = Drust_check.Dsan

let int_tag : int Univ.tag = Univ.create_tag ~name:"int"
let pack = Univ.pack int_tag

let small_params nodes =
  {
    Params.default with
    Params.nodes;
    cores_per_node = 4;
    mem_per_node = Drust_util.Units.mib 64;
  }

let in_cluster ?(nodes = 4) body =
  let cluster = Cluster.create (small_params nodes) in
  let result = ref None in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         result := Some (body cluster)));
  Cluster.run cluster;
  match !result with Some v -> v | None -> Alcotest.fail "body did not run"

let in_temp_dump_dir f =
  let dir = Filename.temp_file "flight" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Flight.set_dump_dir (Some dir);
  Fun.protect
    ~finally:(fun () ->
      Flight.set_dump_dir None;
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let contains ~affix s = Astring.String.is_infix ~affix s

let check_line msg ~affix lines =
  Alcotest.(check bool)
    (Printf.sprintf "%s (looking for %S)" msg affix)
    true
    (List.exists (contains ~affix) lines)

(* ------------------------------------------------------------------ *)
(* Kind table *)

(* Codes 0..8 must be exactly the protocol's dense op-outcome codes
   (Protocol.op_latency_kinds order): the protocol layer records its
   already-computed outcome code untranslated. *)
let test_kind_table_pins_protocol_codes () =
  let n = List.length P.op_latency_kinds in
  Alcotest.(check (list string))
    "codes 0..8 are the protocol outcome labels, in order"
    P.op_latency_kinds
    (Array.to_list (Array.sub Flight.kind_names 0 n));
  Alcotest.(check int) "read_local is code 0" 0 Flight.k_read_local;
  Alcotest.(check int) "drop is the last protocol code" (n - 1) Flight.k_drop;
  Alcotest.(check int) "every kind code is named"
    (Array.length Flight.kind_names - 1)
    Flight.k_dsan_violation

(* ------------------------------------------------------------------ *)
(* The ring *)

let test_ring_wraps_and_merges () =
  let t = Flight.create ~cap:4 ~nodes:2 () in
  for i = 1 to 10 do
    Flight.record t ~node:0 ~time:(float_of_int i) ~kind:Flight.k_fab_send
      ~a:1 ~b:i ~c:0 ~d:0
  done;
  Flight.record t ~node:1 ~time:99.0 ~kind:Flight.k_view_change ~a:7 ~b:0
    ~c:0 ~d:0;
  Alcotest.(check int) "recorded counts overflow too" 10
    (Flight.recorded t ~node:0);
  let evs = Flight.events t in
  Alcotest.(check int) "cap survivors + the other node" 5 (List.length evs);
  Alcotest.(check (list int)) "last cap events, record order"
    [ 7; 8; 9; 10 ]
    (List.filter_map
       (fun e ->
         if e.Flight.ev_node = 0 then Some e.Flight.ev_b else None)
       evs);
  (match List.rev evs with
  | last :: _ ->
      Alcotest.(check int) "cross-node merge keeps true order" 1
        last.Flight.ev_node
  | [] -> Alcotest.fail "no events");
  (* Out-of-range nodes and disabled recorders drop silently. *)
  Flight.record t ~node:9 ~time:0.0 ~kind:0 ~a:0 ~b:0 ~c:0 ~d:0;
  Flight.set_enabled t false;
  Flight.record t ~node:0 ~time:0.0 ~kind:0 ~a:0 ~b:0 ~c:0 ~d:0;
  Alcotest.(check int) "disabled drops" 10 (Flight.recorded t ~node:0);
  Flight.set_enabled t true

(* ------------------------------------------------------------------ *)
(* Dump codec *)

let test_dump_roundtrip () =
  let t = Flight.create ~cap:8 ~nodes:3 () in
  Flight.set_label t "codec-test";
  Flight.record t ~node:0 ~time:1.25e-6 ~kind:Flight.k_create ~a:4096 ~b:0
    ~c:0 ~d:64;
  Flight.record t ~node:2 ~time:2.5e-6 ~kind:Flight.k_read_fetch ~a:4096
    ~b:0 ~c:0 ~d:0;
  Flight.record t ~node:0 ~time:3.75e-6 ~kind:Flight.k_write_bump ~a:4096
    ~b:4096 ~c:1 ~d:0;
  Flight.record t ~node:1 ~time:4.0e-6 ~kind:Flight.k_fab_timeout ~a:2 ~b:0
    ~c:0 ~d:0;
  let d = Flight.dump t ~reason:"unit test" ~object_:4096 ~now:5.0e-6 () in
  Alcotest.(check int) "slice keeps only object events" 3
    (List.length d.Flight.dm_slice);
  let path = Filename.temp_file "flight" ".flight.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Flight.save ~path d;
      match Flight.load ~path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok d' ->
          Alcotest.(check bool) "dump roundtrips structurally" true (d = d'));
  (* Unknown schema and junk are rejected with a message, not raised. *)
  Alcotest.(check bool) "junk rejected" true
    (match Flight.of_json (Drust_util.Json.Obj []) with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Timeline rendering on synthetic events *)

let test_explain_object_timeline () =
  let t = Flight.create ~cap:64 ~nodes:4 () in
  let phys = 8192 in
  Flight.record t ~node:0 ~time:0.0 ~kind:Flight.k_create ~a:phys ~b:0 ~c:0
    ~d:64;
  (* node 2 fetches a copy under color 0 *)
  Flight.record t ~node:2 ~time:1e-6 ~kind:Flight.k_read_fetch ~a:phys ~b:0
    ~c:0 ~d:0;
  (* unrelated object: must not show up in the slice *)
  Flight.record t ~node:3 ~time:1.5e-6 ~kind:Flight.k_read_local ~a:12288
    ~b:3 ~c:0 ~d:0;
  (* the owner writes: color bump strands node 2's copy *)
  Flight.record t ~node:0 ~time:2e-6 ~kind:Flight.k_write_bump ~a:phys
    ~b:phys ~c:1 ~d:0;
  Flight.record t ~node:0 ~time:3e-6 ~kind:Flight.k_transfer ~a:phys ~b:3
    ~d:0 ~c:0;
  Flight.record t ~node:2 ~time:4e-6 ~kind:Flight.k_dsan_violation ~a:phys
    ~b:1 ~c:0 ~d:0;
  let lines = Flight.explain_object ~object_:phys (Flight.events t) in
  check_line "creation" ~affix:"create" lines;
  check_line "staleness note" ~affix:"went stale here" lines;
  Alcotest.(check bool) "staleness names node 2" true
    (List.exists
       (fun l -> contains ~affix:"went stale" l && contains ~affix:"[2]" l)
       lines);
  check_line "violation marker" ~affix:"DSan flagged this object here" lines;
  check_line "ownership resolved" ~affix:"last known owner: node 3" lines;
  Alcotest.(check bool) "unrelated object filtered out" true
    (not (List.exists (contains ~affix:"0x3000") lines));
  (* render_last is per node, oldest first, bounded. *)
  let last = Flight.render_last ~limit:1 (Flight.events t) ~node:0 in
  Alcotest.(check int) "limit respected" 1 (List.length last);
  check_line "newest survives" ~affix:"transfer" last

(* ------------------------------------------------------------------ *)
(* Automatic dumps *)

let test_guard_dumps_and_reraises () =
  in_temp_dump_dir (fun _dir ->
      let t = Flight.create ~nodes:2 () in
      Flight.set_label t "guard-test";
      Flight.record t ~node:0 ~time:1.0 ~kind:Flight.k_view_change ~a:1 ~b:0
        ~c:0 ~d:0;
      let raised =
        try
          Flight.guard t ~now:(fun () -> 1.5) (fun () -> failwith "boom")
        with Failure m -> m
      in
      Alcotest.(check string) "exception re-raised intact" "boom" raised;
      let path = Flight.auto_dump_path t in
      Alcotest.(check bool) "dump written" true (Sys.file_exists path);
      (match Flight.load ~path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok d ->
          Alcotest.(check bool) "reason is the exception" true
            (contains ~affix:"uncaught" d.Flight.dm_reason
            && contains ~affix:"boom" d.Flight.dm_reason);
          Alcotest.(check (float 1e-12)) "dump time" 1.5 d.Flight.dm_time;
          Alcotest.(check int) "ring retained" 1
            (List.length d.Flight.dm_events));
      (* First failure wins: a second dump would overwrite the tail that
         explains the first. *)
      Alcotest.(check bool) "second auto_dump refused" false
        (Flight.auto_dump t ~reason:"later" ~now:2.0 ());
      (* The process-wide kill switch. *)
      let t2 = Flight.create ~nodes:1 () in
      Flight.set_label t2 "guard-test-disabled";
      Flight.set_auto_dump false;
      Fun.protect
        ~finally:(fun () -> Flight.set_auto_dump true)
        (fun () ->
          Alcotest.(check bool) "auto-dump disabled" false
            (Flight.auto_dump t2 ~reason:"x" ~now:0.0 ()));
      Alcotest.(check bool) "no file when disabled" false
        (Sys.file_exists (Flight.auto_dump_path t2)))

(* ------------------------------------------------------------------ *)
(* Recording is strictly observational *)

let run_workload ~record =
  in_cluster (fun cluster ->
      Flight.set_enabled (Cluster.flight cluster) record;
      let ctx0 = Ctx.make cluster ~node:0 in
      let ctx1 = Ctx.make cluster ~node:1 in
      let o = P.create_on ctx0 ~node:0 ~size:64 (pack 1) in
      let r = P.borrow_imm ctx1 o in
      ignore (P.imm_deref ctx1 r);
      P.drop_imm ctx1 r;
      P.owner_write ctx0 o (pack 2);
      P.transfer ctx0 o ~to_node:2;
      let v = Univ.unpack_exn int_tag (P.owner_read ctx0 o) in
      P.drop_owner ctx0 o;
      (v, Cluster.now cluster))

let test_recording_is_observational () =
  let on = run_workload ~record:true in
  let off = run_workload ~record:false in
  Alcotest.(check bool) "identical result and virtual time" true (on = off)

(* ------------------------------------------------------------------ *)
(* The seeded regression: violation -> dump -> timeline, no re-run *)

let test_seeded_violation_dump_explains_object () =
  in_temp_dump_dir (fun _dir ->
      let dump_path, phys =
        in_cluster (fun cluster ->
            let fl = Cluster.flight cluster in
            Flight.set_label fl "flight-regression";
            let ctx0 = Ctx.make cluster ~node:0 in
            let ctx1 = Ctx.make cluster ~node:1 in
            (* The real workload the black box witnesses: create on node
               0, a remote fetch caches a copy on node 1, then a color
               bump strands it. *)
            let o = P.create_on ctx0 ~node:0 ~size:64 (pack 1) in
            let r = P.borrow_imm ctx1 o in
            ignore (P.imm_deref ctx1 r);
            P.drop_imm ctx1 r;
            P.owner_write ctx0 o (pack 2);
            let g = P.gaddr o in
            let phys = Gaddr.to_int (Gaddr.clear_color g) in
            (* Inject the corrupted observation stream (a read served
               from the stale pre-bump copy) into a sanitizer attached
               to this same cluster: DSan must flag it AND the flight
               recorder must auto-write the dump naming this object. *)
            let t = Dsan.attach cluster in
            Fun.protect
              ~finally:(fun () -> Dsan.detach t)
              (fun () ->
                let g0 = Gaddr.clear_color g in
                let g1 = Gaddr.bump_color g0 in
                Dsan.observe_protocol t ~time:1e-5 ~node:0 ~thread:0
                  (P.Ev_create { g = g0; size = 64 });
                Dsan.observe_cache t ~time:1.1e-5 ~node:1
                  (Cache.Insert { key = g0; size = 64 });
                Dsan.observe_protocol t ~time:1.2e-5 ~node:0 ~thread:0
                  (P.Ev_write
                     { before = g0; after = g1; size = 64; kind = P.W_bump });
                Dsan.observe_protocol t ~time:1.3e-5 ~node:1 ~thread:2
                  (P.Ev_read { g = g1; path = P.Path_cache g0 });
                Alcotest.(check bool) "sanitizer flagged the injection"
                  true
                  (Dsan.violations t <> []));
            (Flight.auto_dump_path fl, phys))
      in
      Alcotest.(check bool) "violation auto-wrote the dump" true
        (Sys.file_exists dump_path);
      (* Everything below uses the dump alone — no cluster, no re-run. *)
      match Flight.load ~path:dump_path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok d ->
          Alcotest.(check (option int)) "offending object recorded"
            (Some phys) d.Flight.dm_object;
          Alcotest.(check bool) "reason names the invariant" true
            (contains ~affix:"stale_cache_read" d.Flight.dm_reason);
          Alcotest.(check bool) "causal slice extracted" true
            (d.Flight.dm_slice <> []);
          let lines = Flight.explain_object ~object_:phys d.Flight.dm_events in
          check_line "creation witnessed" ~affix:"create" lines;
          check_line "the remote fetch" ~affix:"read_fetch" lines;
          check_line "the color bump" ~affix:"write_bump" lines;
          Alcotest.(check bool) "staleness attributed to node 1" true
            (List.exists
               (fun l ->
                 contains ~affix:"went stale" l && contains ~affix:"[1]" l)
               lines);
          check_line "the violation marker"
            ~affix:"DSan flagged this object here" lines;
          check_line "ownership resolved" ~affix:"last known owner: node 0"
            lines)

let () =
  Alcotest.run "flight"
    [
      ( "kinds",
        [
          Alcotest.test_case "pins protocol op codes" `Quick
            test_kind_table_pins_protocol_codes;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraps and merges" `Quick
            test_ring_wraps_and_merges;
        ] );
      ( "codec",
        [ Alcotest.test_case "dump roundtrip" `Quick test_dump_roundtrip ] );
      ( "timeline",
        [
          Alcotest.test_case "explain_object" `Quick
            test_explain_object_timeline;
        ] );
      ( "auto-dump",
        [
          Alcotest.test_case "guard dumps + re-raises" `Quick
            test_guard_dumps_and_reraises;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "recording is observational" `Quick
            test_recording_is_observational;
        ] );
      ( "regression",
        [
          Alcotest.test_case "seeded violation -> dump -> timeline" `Quick
            test_seeded_violation_dump_explains_object;
        ] );
    ]
