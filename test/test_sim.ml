(* Tests for the discrete-event engine: virtual time, process scheduling,
   blocking primitives, mailboxes and resources. *)

module Engine = Drust_sim.Engine
module Mailbox = Drust_sim.Mailbox
module Resource = Drust_sim.Resource

let checkf = Alcotest.check (Alcotest.float 1e-12)

let test_clock_starts_at_zero () =
  let e = Engine.create () in
  checkf "t=0" 0.0 (Engine.now e)

let test_schedule_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:2.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~at:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~at:3.0 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  checkf "final time" 3.0 (Engine.now e)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~at:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_schedule_past_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~at:5.0 (fun () ->
      Alcotest.(check bool) "raises" true
        (try
           Engine.schedule e ~at:1.0 (fun () -> ());
           false
         with Invalid_argument _ -> true));
  Engine.run e

let test_delay () =
  let e = Engine.create () in
  let finished = ref (-1.0) in
  ignore
    (Engine.spawn e (fun () ->
         Engine.delay e 1.5;
         Engine.delay e 0.5;
         finished := Engine.now e));
  Engine.run e;
  checkf "delays add" 2.0 !finished

let test_spawn_at () =
  let e = Engine.create () in
  let started = ref (-1.0) in
  ignore (Engine.spawn ~at:4.0 e (fun () -> started := Engine.now e));
  Engine.run e;
  checkf "starts at 4" 4.0 !started

let test_join () =
  let e = Engine.create () in
  let order = ref [] in
  let child =
    Engine.spawn e (fun () ->
        Engine.delay e 1.0;
        order := "child" :: !order)
  in
  ignore
    (Engine.spawn e (fun () ->
         Engine.join e child;
         order := "parent" :: !order));
  Engine.run e;
  Alcotest.(check (list string)) "join order" [ "child"; "parent" ] (List.rev !order)

let test_join_already_done () =
  let e = Engine.create () in
  let child = Engine.spawn e (fun () -> ()) in
  let joined = ref false in
  ignore
    (Engine.spawn ~at:1.0 e (fun () ->
         Engine.join e child;
         joined := true));
  Engine.run e;
  Alcotest.(check bool) "joined" true !joined

let test_process_failure_propagates () =
  let e = Engine.create () in
  ignore (Engine.spawn e (fun () -> failwith "boom"));
  Alcotest.(check bool) "run raises Process_failure" true
    (try
       Engine.run e;
       false
     with Engine.Process_failure (Failure msg) -> String.equal msg "boom")

let test_join_reraises () =
  let e = Engine.create () in
  let child = Engine.spawn e (fun () -> failwith "child-died") in
  let saw = ref false in
  ignore
    (Engine.spawn ~at:1.0 e (fun () ->
         try Engine.join e child
         with Engine.Process_failure (Failure msg) when String.equal msg "child-died" ->
           saw := true));
  (try Engine.run e with Engine.Process_failure _ -> ());
  Alcotest.(check bool) "join re-raised" true !saw

let test_yield_interleaves () =
  let e = Engine.create () in
  let log = ref [] in
  let worker name =
    Engine.spawn e (fun () ->
        for i = 1 to 3 do
          log := Printf.sprintf "%s%d" name i :: !log;
          Engine.yield e
        done)
  in
  ignore (worker "a");
  ignore (worker "b");
  Engine.run e;
  Alcotest.(check (list string)) "interleaved"
    [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
    (List.rev !log)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~at:1.0 (fun () -> incr fired);
  Engine.schedule e ~at:10.0 (fun () -> incr fired);
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check int) "one pending" 1 (Engine.pending_events e)

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_send_then_recv () =
  let e = Engine.create () in
  let mb = Mailbox.create e in
  let got = ref 0 in
  Mailbox.send mb 42;
  ignore (Engine.spawn e (fun () -> got := Mailbox.recv mb));
  Engine.run e;
  Alcotest.(check int) "received" 42 !got

let test_mailbox_recv_blocks () =
  let e = Engine.create () in
  let mb = Mailbox.create e in
  let got_at = ref (-1.0) in
  ignore
    (Engine.spawn e (fun () ->
         ignore (Mailbox.recv mb);
         got_at := Engine.now e));
  ignore
    (Engine.spawn e (fun () ->
         Engine.delay e 2.0;
         Mailbox.send mb "late"));
  Engine.run e;
  checkf "woke at send time" 2.0 !got_at

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Mailbox.create e in
  let got = ref [] in
  List.iter (Mailbox.send mb) [ 1; 2; 3 ];
  ignore
    (Engine.spawn e (fun () ->
         for _ = 1 to 3 do
           got := Mailbox.recv mb :: !got
         done));
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_multiple_receivers () =
  let e = Engine.create () in
  let mb = Mailbox.create e in
  let got = ref [] in
  for _ = 1 to 2 do
    ignore
      (Engine.spawn e (fun () ->
           (* Bind before consing: the recv suspends, and [!got] must be
              read after resumption. *)
           let v = Mailbox.recv mb in
           got := v :: !got))
  done;
  ignore
    (Engine.spawn ~at:1.0 e (fun () ->
         Mailbox.send mb "x";
         Mailbox.send mb "y"));
  Engine.run e;
  Alcotest.(check int) "both served" 2 (List.length !got)

let test_mailbox_try_recv () =
  let e = Engine.create () in
  let mb = Mailbox.create e in
  Alcotest.(check (option int)) "empty" None (Mailbox.try_recv mb);
  Mailbox.send mb 5;
  Alcotest.(check (option int)) "nonempty" (Some 5) (Mailbox.try_recv mb)

(* ------------------------------------------------------------------ *)
(* Resource *)

let test_resource_serializes () =
  let e = Engine.create () in
  let r = Resource.create e ~capacity:1 in
  let finish = ref [] in
  let worker name =
    Engine.spawn e (fun () ->
        Resource.use r (fun () -> Engine.delay e 1.0);
        finish := (name, Engine.now e) :: !finish)
  in
  ignore (worker "a");
  ignore (worker "b");
  Engine.run e;
  (* Capacity 1: the second worker finishes one second after the first. *)
  let times = List.sort compare (List.map snd !finish) in
  Alcotest.(check (list (float 1e-9))) "staggered" [ 1.0; 2.0 ] times

let test_resource_parallel_within_capacity () =
  let e = Engine.create () in
  let r = Resource.create e ~capacity:2 in
  let finish = ref [] in
  for _ = 1 to 2 do
    ignore
      (Engine.spawn e (fun () ->
           Resource.use r (fun () -> Engine.delay e 1.0);
           finish := Engine.now e :: !finish))
  done;
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "both at t=1" [ 1.0; 1.0 ] !finish

let test_resource_fifo_fairness () =
  let e = Engine.create () in
  let r = Resource.create e ~capacity:1 in
  let order = ref [] in
  for i = 0 to 4 do
    ignore
      (Engine.spawn e (fun () ->
           Resource.use r (fun () -> Engine.delay e 0.1);
           order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_resource_release_unheld () =
  let e = Engine.create () in
  let r = Resource.create e ~capacity:1 in
  Alcotest.(check bool) "raises" true
    (try
       Resource.release r;
       false
     with Invalid_argument _ -> true)

let test_resource_utilization () =
  let e = Engine.create () in
  let r = Resource.create e ~capacity:2 in
  ignore
    (Engine.spawn e (fun () ->
         Resource.use r (fun () -> Engine.delay e 1.0);
         Engine.delay e 1.0));
  Engine.run e;
  (* One of two cores busy for 1s out of a 2s window = 0.25. *)
  let u = Resource.utilization r ~now:(Engine.now e) in
  Alcotest.(check (float 1e-9)) "utilization" 0.25 u

let test_resource_exception_releases () =
  let e = Engine.create () in
  let r = Resource.create e ~capacity:1 in
  ignore
    (Engine.spawn e (fun () ->
         (try Resource.use r (fun () -> failwith "inner") with Failure _ -> ());
         Alcotest.(check int) "released" 0 (Resource.in_use r)));
  Engine.run e

(* Property: however many processes contend, a resource never exceeds its
   capacity and always drains back to zero. *)
let prop_resource_capacity =
  QCheck.Test.make ~name:"resource never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(1 -- 20) (int_range 1 5)))
    (fun (capacity, jobs) ->
      let e = Engine.create () in
      let r = Resource.create e ~capacity in
      let max_seen = ref 0 in
      List.iter
        (fun dur ->
          ignore
            (Engine.spawn e (fun () ->
                 Resource.use r (fun () ->
                     max_seen := max !max_seen (Resource.in_use r);
                     Engine.delay e (Float.of_int dur *. 0.01)))))
        jobs;
      Engine.run e;
      !max_seen <= capacity && Resource.in_use r = 0 && Resource.queued r = 0)

(* ------------------------------------------------------------------ *)
(* Sync primitives *)

module Sync = Drust_sim.Sync

let test_condvar_signal_fifo () =
  let e = Engine.create () in
  let cv = Sync.Condvar.create e in
  let woke = ref [] in
  for i = 1 to 3 do
    ignore
      (Engine.spawn e (fun () ->
           Sync.Condvar.wait cv;
           woke := i :: !woke))
  done;
  ignore
    (Engine.spawn ~at:1.0 e (fun () ->
         Sync.Condvar.signal cv;
         Engine.delay e 1.0;
         Sync.Condvar.broadcast cv));
  Engine.run e;
  Alcotest.(check (list int)) "fifo then broadcast" [ 1; 2; 3 ] (List.rev !woke)

let test_condvar_signal_empty_ok () =
  let e = Engine.create () in
  let cv = Sync.Condvar.create e in
  Sync.Condvar.signal cv;
  Sync.Condvar.broadcast cv;
  Alcotest.(check int) "no waiters" 0 (Sync.Condvar.waiters cv)

let test_barrier_trips_and_reuses () =
  let e = Engine.create () in
  let b = Sync.Barrier.create e ~parties:3 in
  let rounds = ref [] in
  for i = 0 to 2 do
    ignore
      (Engine.spawn e (fun () ->
           Engine.delay e (Float.of_int i);
           ignore (Sync.Barrier.await b);
           rounds := (1, Engine.now e) :: !rounds;
           ignore (Sync.Barrier.await b);
           rounds := (2, Engine.now e) :: !rounds))
  done;
  Engine.run e;
  (* Everyone leaves round 1 at t=2 (the last arrival), then round 2
     immediately after. *)
  List.iter
    (fun (_round, t) -> Alcotest.(check (float 1e-9)) "released together" 2.0 t)
    !rounds;
  Alcotest.(check int) "all passed twice" 6 (List.length !rounds)

let test_waitgroup () =
  let e = Engine.create () in
  let wg = Sync.Waitgroup.create e in
  Sync.Waitgroup.add wg 3;
  let finished_at = ref (-1.0) in
  ignore
    (Engine.spawn e (fun () ->
         Sync.Waitgroup.wait wg;
         finished_at := Engine.now e));
  for i = 1 to 3 do
    ignore
      (Engine.spawn e (fun () ->
           Engine.delay e (Float.of_int i);
           Sync.Waitgroup.done_ wg))
  done;
  Engine.run e;
  Alcotest.(check (float 1e-9)) "released by last done" 3.0 !finished_at;
  Alcotest.(check bool) "underflow raises" true
    (try
       Sync.Waitgroup.done_ wg;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "clock zero" `Quick test_clock_starts_at_zero;
          Alcotest.test_case "schedule order" `Quick test_schedule_order;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "past rejected" `Quick test_schedule_past_rejected;
          Alcotest.test_case "delay" `Quick test_delay;
          Alcotest.test_case "spawn at" `Quick test_spawn_at;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "join done" `Quick test_join_already_done;
          Alcotest.test_case "failure propagates" `Quick test_process_failure_propagates;
          Alcotest.test_case "join re-raises" `Quick test_join_reraises;
          Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
          Alcotest.test_case "run until" `Quick test_run_until;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "send then recv" `Quick test_mailbox_send_then_recv;
          Alcotest.test_case "recv blocks" `Quick test_mailbox_recv_blocks;
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "multi receivers" `Quick test_mailbox_multiple_receivers;
          Alcotest.test_case "try_recv" `Quick test_mailbox_try_recv;
        ] );
      ( "sync",
        [
          Alcotest.test_case "condvar fifo+broadcast" `Quick test_condvar_signal_fifo;
          Alcotest.test_case "condvar empty ok" `Quick test_condvar_signal_empty_ok;
          Alcotest.test_case "barrier reuses" `Quick test_barrier_trips_and_reuses;
          Alcotest.test_case "waitgroup" `Quick test_waitgroup;
        ] );
      ( "resource",
        [
          Alcotest.test_case "serializes" `Quick test_resource_serializes;
          Alcotest.test_case "parallel within capacity" `Quick
            test_resource_parallel_within_capacity;
          Alcotest.test_case "fifo fairness" `Quick test_resource_fifo_fairness;
          Alcotest.test_case "release unheld" `Quick test_resource_release_unheld;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
          Alcotest.test_case "exception releases" `Quick test_resource_exception_releases;
          QCheck_alcotest.to_alcotest prop_resource_capacity;
        ] );
    ]
