(* Tests for the PGAS memory substrate: address packing, partitions with
   the size-class allocator, and the colored-key cache. *)

module Gaddr = Drust_memory.Gaddr
module Partition = Drust_memory.Partition
module Cache = Drust_memory.Cache
module Univ = Drust_util.Univ

let int_tag : int Univ.tag = Univ.create_tag ~name:"int"
let pack = Univ.pack int_tag
let unpack v = Univ.unpack_exn int_tag v

(* ------------------------------------------------------------------ *)
(* Gaddr *)

let test_gaddr_fields () =
  let a = Gaddr.make ~node:5 ~offset:0xABC in
  Alcotest.(check int) "node" 5 (Gaddr.node_of a);
  Alcotest.(check int) "offset" 0xABC (Gaddr.offset_of a);
  Alcotest.(check int) "color" 0 (Gaddr.color_of a)

let test_gaddr_color_roundtrip () =
  let a = Gaddr.make ~node:3 ~offset:77 in
  let b = Gaddr.with_color a 123 in
  Alcotest.(check int) "color set" 123 (Gaddr.color_of b);
  Alcotest.(check int) "node preserved" 3 (Gaddr.node_of b);
  Alcotest.(check int) "offset preserved" 77 (Gaddr.offset_of b);
  Alcotest.(check bool) "clear_color restores" true
    (Gaddr.equal a (Gaddr.clear_color b))

let test_gaddr_bump () =
  let a = Gaddr.make ~node:0 ~offset:1 in
  let b = Gaddr.bump_color a in
  Alcotest.(check int) "bumped" 1 (Gaddr.color_of b);
  Alcotest.(check bool) "differs" false (Gaddr.equal a b)

let test_gaddr_overflow () =
  let a = Gaddr.with_color (Gaddr.make ~node:0 ~offset:1) Gaddr.max_color in
  Alcotest.(check bool) "overflow raises" true
    (try
       ignore (Gaddr.bump_color a);
       false
     with Gaddr.Color_overflow _ -> true)

let test_gaddr_bounds () =
  Alcotest.(check bool) "node too big" true
    (try
       ignore (Gaddr.make ~node:Gaddr.max_nodes ~offset:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "offset too big" true
    (try
       ignore (Gaddr.make ~node:0 ~offset:(Gaddr.max_offset + 1));
       false
     with Invalid_argument _ -> true)

let test_gaddr_is_local () =
  let a = Gaddr.make ~node:2 ~offset:9 in
  Alcotest.(check bool) "local" true (Gaddr.is_local a ~node:2);
  Alcotest.(check bool) "remote" false (Gaddr.is_local a ~node:3)

let prop_gaddr_pack_unpack =
  QCheck.Test.make ~name:"gaddr field packing is lossless" ~count:500
    QCheck.(triple (int_bound (Gaddr.max_nodes - 1)) (int_bound 1_000_000)
              (int_bound Gaddr.max_color))
    (fun (node, offset, color) ->
      let a = Gaddr.with_color (Gaddr.make ~node ~offset) color in
      Gaddr.node_of a = node && Gaddr.offset_of a = offset
      && Gaddr.color_of a = color)

(* ------------------------------------------------------------------ *)
(* Partition *)

let test_partition_alloc_get () =
  let p = Partition.create ~node:1 ~capacity_bytes:4096 in
  let a = Partition.alloc p ~size:100 (pack 7) in
  Alcotest.(check int) "node" 1 (Gaddr.node_of a);
  Alcotest.(check int) "value" 7 (unpack (Partition.get p a).Partition.value);
  Alcotest.(check int) "size" 100 (Partition.get p a).Partition.size

let test_partition_distinct_addresses () =
  let p = Partition.create ~node:0 ~capacity_bytes:65536 in
  let addrs = List.init 50 (fun i -> Partition.alloc p ~size:16 (pack i)) in
  let uniq = List.sort_uniq Gaddr.compare addrs in
  Alcotest.(check int) "all distinct" 50 (List.length uniq)

let test_partition_free_and_reuse () =
  let p = Partition.create ~node:0 ~capacity_bytes:4096 in
  let a = Partition.alloc p ~size:64 (pack 1) in
  let used = Partition.used_bytes p in
  Partition.free p a;
  Alcotest.(check int) "usage returns" (used - 64) (Partition.used_bytes p);
  let b = Partition.alloc p ~size:64 (pack 2) in
  Alcotest.(check int) "offset reused" (Gaddr.offset_of a) (Gaddr.offset_of b)

let test_partition_free_dead () =
  let p = Partition.create ~node:0 ~capacity_bytes:4096 in
  let a = Partition.alloc p ~size:8 (pack 0) in
  Partition.free p a;
  Alcotest.(check bool) "double free" true
    (try
       Partition.free p a;
       false
     with Invalid_argument _ -> true)

let test_partition_oom () =
  let p = Partition.create ~node:0 ~capacity_bytes:128 in
  Alcotest.(check bool) "oom raises" true
    (try
       ignore (Partition.alloc p ~size:1024 (pack 0));
       false
     with Partition.Out_of_memory _ -> true)

let test_partition_set () =
  let p = Partition.create ~node:0 ~capacity_bytes:4096 in
  let a = Partition.alloc p ~size:8 (pack 1) in
  Partition.set p a (pack 2);
  Alcotest.(check int) "updated" 2 (unpack (Partition.get p a).Partition.value)

let test_partition_get_colored_address () =
  (* Lookups must ignore the color field. *)
  let p = Partition.create ~node:0 ~capacity_bytes:4096 in
  let a = Partition.alloc p ~size:8 (pack 5) in
  let colored = Gaddr.with_color a 99 in
  Alcotest.(check int) "colored get" 5 (unpack (Partition.get p colored).Partition.value)

let test_partition_foreign_address () =
  let p = Partition.create ~node:0 ~capacity_bytes:4096 in
  let foreign = Gaddr.make ~node:1 ~offset:8 in
  Alcotest.(check bool) "foreign rejected" true
    (try
       ignore (Partition.get p foreign);
       false
     with Invalid_argument _ -> true)

let test_partition_iter () =
  let p = Partition.create ~node:0 ~capacity_bytes:4096 in
  ignore (Partition.alloc p ~size:8 (pack 1));
  ignore (Partition.alloc p ~size:8 (pack 2));
  let n = ref 0 in
  Partition.iter p (fun _ _ -> incr n);
  Alcotest.(check int) "two live" 2 !n

let test_partition_put_mirrors () =
  (* Replication upserts at exact offsets; a later promotion must be able
     to allocate without colliding with mirrored objects. *)
  let primary = Partition.create ~node:2 ~capacity_bytes:65536 in
  let backup = Partition.create ~node:2 ~capacity_bytes:65536 in
  let a = Partition.alloc primary ~size:64 (pack 1) in
  Partition.put backup a ~size:64 (pack 1);
  Alcotest.(check int) "mirrored" 1 (unpack (Partition.get backup a).Partition.value);
  Partition.put backup a ~size:64 (pack 2);
  Alcotest.(check int) "upserted" 2 (unpack (Partition.get backup a).Partition.value);
  Alcotest.(check int) "no double count" 64 (Partition.used_bytes backup);
  let fresh = Partition.alloc backup ~size:64 (pack 3) in
  Alcotest.(check bool) "bump advanced past mirror" true
    (Gaddr.offset_of fresh <> Gaddr.offset_of a)

let test_partition_remove_is_idempotent () =
  let p = Partition.create ~node:0 ~capacity_bytes:4096 in
  let a = Partition.alloc p ~size:16 (pack 1) in
  Partition.remove p a;
  Alcotest.(check bool) "gone" false (Partition.mem p a);
  (* A second remove is a silent no-op (replication mirrors deletions). *)
  Partition.remove p a;
  Alcotest.(check int) "usage zero" 0 (Partition.used_bytes p)

let prop_partition_usage_balanced =
  QCheck.Test.make ~name:"partition usage returns to zero after freeing all"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 1 512))
    (fun sizes ->
      let p = Partition.create ~node:0 ~capacity_bytes:(1 lsl 20) in
      let addrs = List.map (fun s -> Partition.alloc p ~size:s (pack s)) sizes in
      List.iter (Partition.free p) addrs;
      Partition.used_bytes p = 0 && Partition.live_objects p = 0)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_insert_lookup () =
  let c = Cache.create ~node:0 () in
  let g = Gaddr.make ~node:1 ~offset:16 in
  let copy = Cache.insert c g ~size:64 (pack 10) in
  Alcotest.(check int) "refcount starts 1" 1 copy.Cache.refcount;
  (match Cache.lookup c g with
  | Some found -> Alcotest.(check int) "value" 10 (unpack found.Cache.value)
  | None -> Alcotest.fail "expected hit")

let test_cache_color_miss () =
  (* The heart of DRust's implicit invalidation: a lookup under a newer
     color must miss even though the physical address matches. *)
  let c = Cache.create ~node:0 () in
  let g = Gaddr.make ~node:1 ~offset:16 in
  ignore (Cache.insert c g ~size:64 (pack 10));
  let newer = Gaddr.with_color g 1 in
  Alcotest.(check bool) "stale copy not returned" true (Cache.lookup c newer = None)

let test_cache_displacement_keeps_pinned_copy () =
  let c = Cache.create ~node:0 () in
  let g = Gaddr.make ~node:1 ~offset:16 in
  let old_copy = Cache.insert c g ~size:64 (pack 1) in
  (* Old copy still pinned (refcount 1) when a newer color arrives. *)
  let newer = Gaddr.with_color g 3 in
  let new_copy = Cache.insert c newer ~size:64 (pack 2) in
  Alcotest.(check bool) "old survives for its readers" false old_copy.Cache.dead;
  Alcotest.(check int) "old still readable" 1 (unpack old_copy.Cache.value);
  (match Cache.lookup c newer with
  | Some found -> Alcotest.(check int) "new visible" 2 (unpack found.Cache.value)
  | None -> Alcotest.fail "expected hit on new color");
  (* Draining the old pin reclaims it. *)
  Cache.release c old_copy;
  Alcotest.(check bool) "old reclaimed after release" true old_copy.Cache.dead;
  Cache.release c new_copy;
  Alcotest.(check bool) "new copy still mapped" true (Cache.lookup c newer <> None)

let test_cache_refcount_underflow () =
  let c = Cache.create ~node:0 () in
  let g = Gaddr.make ~node:1 ~offset:16 in
  let copy = Cache.insert c g ~size:8 (pack 0) in
  Cache.release c copy;
  Alcotest.(check bool) "underflow raises" true
    (try
       Cache.release c copy;
       false
     with Invalid_argument _ -> true)

let test_cache_evict_unreferenced () =
  let c = Cache.create ~node:0 () in
  let g1 = Gaddr.make ~node:1 ~offset:16 in
  let g2 = Gaddr.make ~node:1 ~offset:32 in
  let c1 = Cache.insert c g1 ~size:100 (pack 1) in
  let _c2 = Cache.insert c g2 ~size:50 (pack 2) in
  Cache.release c c1;
  let reclaimed = Cache.evict_unreferenced c in
  Alcotest.(check int) "reclaimed bytes" 100 reclaimed;
  Alcotest.(check bool) "g1 gone" true (Cache.lookup c g1 = None);
  Alcotest.(check bool) "g2 kept" true (Cache.lookup c g2 <> None)

let test_cache_invalidate_physical () =
  let c = Cache.create ~node:0 () in
  let g = Gaddr.make ~node:1 ~offset:16 in
  let copy = Cache.insert c g ~size:8 (pack 1) in
  Cache.release c copy;
  (* Invalidate with a different color: physical match is enough. *)
  Cache.invalidate_physical c (Gaddr.with_color g 7);
  Alcotest.(check bool) "gone" true (Cache.lookup c g = None);
  Alcotest.(check int) "bytes reclaimed" 0 (Cache.used_bytes c)

let test_cache_used_bytes () =
  let c = Cache.create ~node:0 () in
  let g = Gaddr.make ~node:1 ~offset:16 in
  let copy = Cache.insert c g ~size:256 (pack 1) in
  Alcotest.(check int) "counted" 256 (Cache.used_bytes c);
  Cache.release c copy;
  ignore (Cache.evict_unreferenced c);
  Alcotest.(check int) "reclaimed" 0 (Cache.used_bytes c)

let test_cache_hit_miss_stats () =
  let c = Cache.create ~node:0 () in
  let g = Gaddr.make ~node:1 ~offset:16 in
  ignore (Cache.lookup c g);
  ignore (Cache.insert c g ~size:8 (pack 1));
  ignore (Cache.lookup c g);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

(* Property: random cache traffic keeps the accounting sane — used bytes
   never negative, lookups only ever return live copies cached under the
   exact colored key. *)
let prop_cache_accounting =
  QCheck.Test.make ~name:"cache accounting stays consistent" ~count:200
    QCheck.(list_of_size Gen.(1 -- 80) (pair small_int small_int))
    (fun script ->
      let c = Cache.create ~node:0 () in
      let live : (int, Cache.copy) Hashtbl.t = Hashtbl.create 8 in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun (a, b) ->
          let slot = abs a mod 6 in
          let g = Gaddr.with_color (Gaddr.make ~node:1 ~offset:(16 * (slot + 1)))
                    (abs b mod 4) in
          match abs (a + b) mod 4 with
          | 0 ->
              (* Drop our pin on the previous copy for this slot first, or
                 the drain below cannot reach it once displaced. *)
              (match Hashtbl.find_opt live slot with
              | Some old ->
                  while old.Cache.refcount > 0 do
                    Cache.release c old
                  done
              | None -> ());
              let copy = Cache.insert c g ~size:(8 * (slot + 1)) (pack slot) in
              Hashtbl.replace live slot copy
          | 1 -> (
              match Cache.lookup c g with
              | Some copy ->
                  check (not copy.Cache.dead);
                  check (Gaddr.equal copy.Cache.key g);
                  Cache.retain copy;
                  Cache.release c copy
              | None -> ())
          | 2 -> (
              match Hashtbl.find_opt live slot with
              | Some copy when copy.Cache.refcount > 0 -> Cache.release c copy
              | Some _ | None -> ())
          | _ -> Cache.invalidate_physical c g)
        script;
      (* Drain all held references, then a full eviction must zero it. *)
      Hashtbl.iter
        (fun _ copy ->
          while copy.Cache.refcount > 0 do
            Cache.release c copy
          done)
        live;
      ignore (Cache.evict_unreferenced c);
      check (Cache.used_bytes c = 0);
      check (Cache.entries c = 0);
      !ok)

let () =
  Alcotest.run "memory"
    [
      ( "gaddr",
        [
          Alcotest.test_case "fields" `Quick test_gaddr_fields;
          Alcotest.test_case "color roundtrip" `Quick test_gaddr_color_roundtrip;
          Alcotest.test_case "bump" `Quick test_gaddr_bump;
          Alcotest.test_case "overflow" `Quick test_gaddr_overflow;
          Alcotest.test_case "bounds" `Quick test_gaddr_bounds;
          Alcotest.test_case "is_local" `Quick test_gaddr_is_local;
          QCheck_alcotest.to_alcotest prop_gaddr_pack_unpack;
        ] );
      ( "partition",
        [
          Alcotest.test_case "alloc/get" `Quick test_partition_alloc_get;
          Alcotest.test_case "distinct addresses" `Quick test_partition_distinct_addresses;
          Alcotest.test_case "free and reuse" `Quick test_partition_free_and_reuse;
          Alcotest.test_case "double free" `Quick test_partition_free_dead;
          Alcotest.test_case "oom" `Quick test_partition_oom;
          Alcotest.test_case "set" `Quick test_partition_set;
          Alcotest.test_case "colored get" `Quick test_partition_get_colored_address;
          Alcotest.test_case "foreign rejected" `Quick test_partition_foreign_address;
          Alcotest.test_case "iter" `Quick test_partition_iter;
          Alcotest.test_case "put mirrors" `Quick test_partition_put_mirrors;
          Alcotest.test_case "remove idempotent" `Quick test_partition_remove_is_idempotent;
          QCheck_alcotest.to_alcotest prop_partition_usage_balanced;
        ] );
      ( "cache",
        [
          Alcotest.test_case "insert/lookup" `Quick test_cache_insert_lookup;
          Alcotest.test_case "color miss" `Quick test_cache_color_miss;
          Alcotest.test_case "displacement" `Quick test_cache_displacement_keeps_pinned_copy;
          Alcotest.test_case "refcount underflow" `Quick test_cache_refcount_underflow;
          Alcotest.test_case "evict unreferenced" `Quick test_cache_evict_unreferenced;
          Alcotest.test_case "invalidate physical" `Quick test_cache_invalidate_physical;
          Alcotest.test_case "used bytes" `Quick test_cache_used_bytes;
          Alcotest.test_case "hit/miss stats" `Quick test_cache_hit_miss_stats;
          QCheck_alcotest.to_alcotest prop_cache_accounting;
        ] );
    ]
