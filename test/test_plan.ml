(* Tests for the plan layer (lib/plan): SimPlan codec roundtrip over
   generated plans, validator rejections, replay equivalence against
   direct experiment runs, and the seeded fuzz/shrink regression — an
   injected protocol bug (a DSan violation synthesized through the
   sanitizer's injection surface, as in test_check.ml) is found by the
   fuzzer and shrunk deterministically to a pinned minimal plan. *)

module Simplan = Drust_plan.Simplan
module Scenario = Drust_plan.Scenario
module Fuzz = Drust_plan.Fuzz
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Gaddr = Drust_memory.Gaddr
module P = Drust_core.Protocol
module Dsan = Drust_check.Dsan

(* ------------------------------------------------------------------ *)
(* Codec roundtrip: parse (print p) = p, over generated plans *)

let generated_plans () =
  (* Two batches: one without churn (small clusters), one at 16 nodes
     so churn plans are sampled too; constructors cover the rest. *)
  Fuzz.plans ~seed:11 ~count:30 ~max_nodes:8
  @ Fuzz.plans ~seed:12 ~count:20 ~max_nodes:16
  @ [
      Simplan.app_plan ~params:Params.default Simplan.Gemm_app Simplan.Drust;
      Simplan.app_plan ~affinity:true ~params:Params.default
        Simplan.Dataframe_app Simplan.Gam;
      Simplan.ycsb_plan ~params:Params.default
        ~mix:(List.hd Drust_workloads.Ycsb.all_workloads)
        ~ops:500 Simplan.Grappa;
      Simplan.failover_plan ~seed:7 ();
      Simplan.churn_plan ~seed:9 ~nodes:16 ();
      Simplan.suite_plan ~name:"everything" ~node_counts:[ 1; 2 ]
        ~churn_nodes:16 ~seed:5
        [ "fig5"; "churn" ];
      Simplan.suite_plan ~name:"fig5" [ "fig5" ];
    ]

let test_roundtrip () =
  List.iter
    (fun p ->
      let printed = Simplan.print p in
      match Simplan.parse printed with
      | Error e -> Alcotest.failf "%s does not re-parse: %s" p.Simplan.name e
      | Ok p' ->
          if p' <> p then
            Alcotest.failf "%s roundtrip is not structural identity"
              p.Simplan.name;
          Alcotest.(check string)
            (p.Simplan.name ^ " canonical bytes")
            printed (Simplan.print p'))
    (generated_plans ())

let test_generated_plans_validate () =
  List.iter
    (fun p ->
      match Simplan.validate p with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "%s is invalid: %s" p.Simplan.name
            (String.concat "; " errs))
    (generated_plans ())

let test_generator_deterministic () =
  let batch () =
    List.map (fun p -> Simplan.print p) (Fuzz.plans ~seed:3 ~count:10 ~max_nodes:16)
  in
  Alcotest.(check (list string)) "same seed, same plans" (batch ()) (batch ())

let test_field_names_sorted () =
  let names = Simplan.field_names in
  Alcotest.(check (list string))
    "sorted, duplicate-free" (List.sort_uniq compare names) names;
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " is a field") true (List.mem f names))
    [ "schema"; "name"; "expect"; "sim"; "suite"; "fault_seed"; "zipf_theta" ]

(* ------------------------------------------------------------------ *)
(* Validator rejections *)

let with_sim f (p : Simplan.t) =
  match p.Simplan.spec with
  | Simplan.Sim s -> { p with Simplan.spec = Simplan.Sim (f s) }
  | Simplan.Suite _ -> assert false

let rejects what p =
  match Simplan.validate p with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "validator accepted %s" what

let test_validate_rejects () =
  let fo = Simplan.failover_plan ~seed:7 () in
  rejects "a path-hostile name" { fo with Simplan.name = "a/b" };
  rejects "an empty name" { fo with Simplan.name = "" };
  rejects "a foreign expect schema" { fo with Simplan.expect = "bogus/v0" };
  rejects "a zero-node topology"
    (with_sim
       (fun s ->
         {
           s with
           Simplan.topology = { s.Simplan.topology with Simplan.nodes = 0 };
         })
       fo);
  rejects "a crash on a node outside the cluster"
    (with_sim
       (fun s ->
         {
           s with
           Simplan.faults =
             {
               s.Simplan.faults with
               Simplan.events =
                 [ Simplan.Crash { node = 99; at = 1e-3 } ];
             };
         })
       fo);
  rejects "a partition healing before it starts"
    (with_sim
       (fun s ->
         {
           s with
           Simplan.faults =
             {
               s.Simplan.faults with
               Simplan.events =
                 s.Simplan.faults.Simplan.events
                 @ [
                     Simplan.Partition
                       { group = [ 1 ]; at = 2e-3; heal_at = 1e-3 };
                   ];
             };
         })
       fo);
  rejects "a failover plan whose victim crash is not scheduled"
    (with_sim
       (fun s ->
         { s with Simplan.faults = { s.Simplan.faults with Simplan.events = [] } })
       fo);
  rejects "a churn suite below 16 nodes"
    (Simplan.suite_plan ~name:"tiny-churn" ~churn_nodes:16
       [ "churn" ]
    |> fun p ->
       match p.Simplan.spec with
       | Simplan.Suite s ->
           {
             p with
             Simplan.spec = Simplan.Suite { s with Simplan.su_churn_nodes = Some 8 };
           }
       | Simplan.Sim _ -> assert false);
  rejects "a suite naming an ill-formed experiment"
    (Simplan.suite_plan ~name:"caps" [ "Fig5" ])

let test_parse_errors () =
  let is_error what s =
    match Simplan.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse accepted %s" what
  in
  is_error "truncated JSON" "{";
  is_error "an empty object" "{}";
  is_error "a foreign schema tag"
    {|{ "schema": "something/v9", "name": "x", "expect": "drust-bench-summary/v3", "suite": { "experiments": ["fig5"], "seed": 1 } }|};
  is_error "a plan with both sim and suite"
    {|{ "schema": "drust-simplan/v1", "name": "x", "expect": "drust-bench-summary/v3", "suite": { "experiments": ["fig5"], "seed": 1 }, "sim": {} }|}

(* ------------------------------------------------------------------ *)
(* Replay equivalence: executing the plan artifact reproduces the
   direct run, bit for bit *)

let reparse p =
  match Simplan.parse (Simplan.print p) with
  | Ok p -> p
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_replay_churn16 () =
  let direct = Drust_experiments.Churn.run_once ~seed:42 ~nodes:16 () in
  let plan = reparse (Simplan.churn_plan ~seed:42 ~nodes:16 ()) in
  let replayed =
    match (Simplan.execute plan).Simplan.result with
    | Simplan.Churn_done r -> r
    | _ -> Alcotest.fail "churn plan did not produce a churn outcome"
  in
  if replayed <> direct then
    Alcotest.fail "replayed churn16 run diverged from the direct run"

let test_replay_app () =
  let params = { Params.default with Params.nodes = 2 } in
  let plan = Simplan.app_plan ~params Simplan.Gemm_app Simplan.Drust in
  let run p =
    match (Simplan.execute p).Simplan.result with
    | Simplan.App_done { result; _ } -> result
    | _ -> Alcotest.fail "app plan did not produce an app outcome"
  in
  let direct = run plan and replayed = run (reparse plan) in
  if replayed <> direct then
    Alcotest.fail "replayed gemm run diverged from the direct run"

(* ------------------------------------------------------------------ *)
(* Fuzz: clean batch, and the injected-bug shrink regression *)

let test_fuzz_clean_batch () =
  let findings = Fuzz.run ~seed:2 ~count:3 ~max_nodes:8 () in
  Alcotest.(check int) "no findings on the real simulator" 0
    (List.length findings)

(* Regression for the fuzzer's first real catch (seed 5, plan 7,
   shrunk): a partition overlapping a not-yet-detected crash made the
   promotion announcement in [Replication.fail_and_promote] unwind the
   controller daemon with an uncaught [Fabric.Node_down].  The shrunk
   plan is pinned verbatim and must execute cleanly, crash detected. *)
let compound_fault_plan_json =
  {|{
  "schema": "drust-simplan/v1",
  "name": "fuzz-s5-p007",
  "expect": "drust-bench-summary/v3",
  "sim": {
    "topology": {
      "nodes": 7,
      "cores_per_node": 4,
      "mem_per_node": 67108864,
      "ghz": 2.6,
      "seed": 694812
    },
    "system": "drust",
    "workload": {
      "kind": "failover",
      "nodes": 7,
      "keys": 38,
      "key_bytes": 8,
      "duration": 0.033904031372456178,
      "crash_t": 0.020940318828393263,
      "victim": 4,
      "bucket": 0.005,
      "think": 2.4073875077240208e-05
    },
    "faults": {
      "fault_seed": 694829,
      "events": [
        { "kind": "crash", "node": 4, "at": 0.020940318828393263 },
        {
          "kind": "partition",
          "group": [2],
          "at": 0.018087612347271437,
          "heal_at": 0.030082886812683805
        }
      ]
    }
  }
}|}

let test_compound_fault_regression () =
  let plan =
    match Simplan.parse compound_fault_plan_json with
    | Ok p -> p
    | Error e -> Alcotest.fail ("pinned compound-fault plan: " ^ e)
  in
  let outcome = Simplan.execute ~sanitize:true plan in
  Alcotest.(check (list string)) "no DSan violations" [] outcome.Simplan.violations;
  match outcome.Simplan.result with
  | Simplan.Failover_done r ->
      Alcotest.(check bool) "ops completed" true (r.Scenario.total_ops > 0);
      Alcotest.(check bool) "crash detected" true
        (r.Scenario.detection_time <> None)
  | _ -> Alcotest.fail "compound-fault plan did not produce a failover outcome"

(* The injected protocol bug: a double-ownership violation synthesized
   through DSan's injection surface (the same entry points
   test_check.ml uses), standing in for a protocol that corrupts
   shadow state whenever the network partitions.  The oracle trips on
   any plan carrying a partition event and reports the injected
   violation verbatim — fully deterministic, so the shrink result can
   be pinned. *)
let injected_reports () =
  let cluster =
    Cluster.create
      {
        Params.default with
        Params.nodes = 4;
        cores_per_node = 4;
        mem_per_node = Drust_util.Units.mib 64;
      }
  in
  let t = Dsan.attach cluster in
  Fun.protect
    ~finally:(fun () -> Dsan.detach t)
    (fun () ->
      let g = Gaddr.make ~node:1 ~offset:4096 in
      Dsan.observe_protocol t ~time:0.0 ~node:1 ~thread:0
        (P.Ev_create { g; size = 64 });
      Dsan.observe_protocol t ~time:2e-6 ~node:2 ~thread:1
        (P.Ev_create { g; size = 64 });
      List.map Dsan.report_to_string (Dsan.violations t))

let has_partition (p : Simplan.t) =
  match p.Simplan.spec with
  | Simplan.Sim s ->
      List.exists
        (function Simplan.Partition _ -> true | _ -> false)
        s.Simplan.faults.Simplan.events
  | Simplan.Suite _ -> false

let test_fuzz_shrinks_injected_bug () =
  let reports = injected_reports () in
  Alcotest.(check bool) "the injection produced a DSan report" true
    (reports <> []);
  let oracle p = if has_partition p then Fuzz.Violations reports else Fuzz.Pass in
  let run () = Fuzz.run ~oracle ~seed:1 ~count:12 ~max_nodes:8 () in
  let findings = run () in
  Alcotest.(check bool) "the bug was found" true (findings <> []);
  let f = List.hd findings in
  Alcotest.(check bool) "original plan fails" true
    (Fuzz.is_failure f.Fuzz.fz_verdict);
  Alcotest.(check bool) "shrunk plan still fails" true
    (Fuzz.is_failure f.Fuzz.fz_shrunk_verdict);
  Alcotest.(check bool) "shrunk plan keeps the trigger" true
    (has_partition f.Fuzz.fz_shrunk);
  (match Simplan.validate f.Fuzz.fz_shrunk with
  | Ok () -> ()
  | Error errs ->
      Alcotest.failf "shrunk plan is invalid: %s" (String.concat "; " errs));
  (* Deterministic: a second identical run shrinks to the same plan. *)
  let findings' = run () in
  Alcotest.(check (list string))
    "shrink is deterministic"
    (List.map (fun f -> Simplan.print f.Fuzz.fz_shrunk) findings)
    (List.map (fun f -> Simplan.print f.Fuzz.fz_shrunk) findings');
  (* Pinned: the minimal plan for this seed, byte for byte.  A change
     here means the generator or shrinker changed behavior — review it
     deliberately, then re-pin. *)
  Alcotest.(check string) "pinned shrink result"
    "{\n\
    \  \"schema\": \"drust-simplan/v1\",\n\
    \  \"name\": \"fuzz-s1-p002\",\n\
    \  \"expect\": \"drust-bench-summary/v3\",\n\
    \  \"sim\": {\n\
    \    \"topology\": {\n\
    \      \"nodes\": 7,\n\
    \      \"cores_per_node\": 4,\n\
    \      \"mem_per_node\": 67108864,\n\
    \      \"ghz\": 2.6,\n\
    \      \"seed\": 55491\n\
    \    },\n\
    \    \"system\": \"drust\",\n\
    \    \"workload\": {\n\
    \      \"kind\": \"failover\",\n\
    \      \"nodes\": 7,\n\
    \      \"keys\": 1,\n\
    \      \"key_bytes\": 8,\n\
    \      \"duration\": 0.015138393623496163,\n\
    \      \"crash_t\": 0.012459352213429158,\n\
    \      \"victim\": 5,\n\
    \      \"bucket\": 0.005,\n\
    \      \"think\": 3.3908089078641308e-05\n\
    \    },\n\
    \    \"faults\": {\n\
    \      \"fault_seed\": 55508,\n\
    \      \"events\": [\n\
    \        { \"kind\": \"crash\", \"node\": 5, \"at\": 0.012459352213429158 },\n\
    \        {\n\
    \          \"kind\": \"partition\",\n\
    \          \"group\": [6],\n\
    \          \"at\": 0.0036337170543473169,\n\
    \          \"heal_at\": 0.0067341528701576857\n\
    \        }\n\
    \      ]\n\
    \    }\n\
    \  }\n\
     }\n"
    (Simplan.print f.Fuzz.fz_shrunk)

let () =
  Alcotest.run "plan"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip over generated plans" `Quick
            test_roundtrip;
          Alcotest.test_case "generated plans validate" `Quick
            test_generated_plans_validate;
          Alcotest.test_case "generator is seed-deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "field_names sorted and complete" `Quick
            test_field_names_sorted;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "validate",
        [ Alcotest.test_case "rejections" `Quick test_validate_rejects ] );
      ( "replay",
        [
          Alcotest.test_case "churn16 plan = direct run" `Slow
            test_replay_churn16;
          Alcotest.test_case "gemm plan replays identically" `Quick
            test_replay_app;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean batch on the real simulator" `Slow
            test_fuzz_clean_batch;
          Alcotest.test_case "compound-fault plan runs clean (fuzz catch)"
            `Quick test_compound_fault_regression;
          Alcotest.test_case "injected bug is found and shrunk" `Quick
            test_fuzz_shrinks_injected_bug;
        ] );
    ]
