(* Unit and property tests for the utility substrate: RNG determinism,
   zipf distribution shape, statistics, the priority queue, and universal
   values. *)

module Rng = Drust_util.Rng
module Zipf = Drust_util.Zipf
module Stats = Drust_util.Stats
module Pqueue = Drust_util.Pqueue
module Univ = Drust_util.Univ

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool)
    "different seeds differ" false
    (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_int_in_bounds () =
  let r = Rng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let x = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in range" true (x >= -5 && x <= 5)
  done

let test_rng_float_mean () =
  let r = Rng.create ~seed:5 in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float r 1.0
  done;
  let mean = !acc /. Float.of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_split_independent () =
  let r = Rng.create ~seed:6 in
  let a = Rng.split r and b = Rng.split r in
  Alcotest.(check bool) "split streams differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_copy () =
  let r = Rng.create ~seed:8 in
  ignore (Rng.bits64 r);
  let c = Rng.copy r in
  check Alcotest.int64 "copy replays" (Rng.bits64 r) (Rng.bits64 c)

(* The unboxed 32-bit-pair implementation in Drust_util.Rng must stay
   bit-identical to textbook splitmix64.  The reference below is the
   plain Int64 version of the algorithm; the literals pin the first
   outputs of two seeds (one negative, exercising sign extension in
   [create]) so a bug in the reference itself cannot hide a matching
   bug in the implementation. *)
module Rng_reference = struct
  type t = { mutable state : int64 }

  let create ~seed = { state = Int64.of_int seed }

  let bits64 t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)
end

let test_rng_golden_sequence () =
  List.iter
    (fun seed ->
      let r = Rng.create ~seed and ref_ = Rng_reference.create ~seed in
      for i = 1 to 10_000 do
        let got = Rng.bits64 r and want = Rng_reference.bits64 ref_ in
        if got <> want then
          Alcotest.failf "seed %d, draw %d: got 0x%Lx, reference 0x%Lx" seed
            i got want
      done)
    [ 0; 1; 42; -7; max_int; min_int ];
  (* Hard-coded splitmix64 values, independent of the reference above. *)
  let r = Rng.create ~seed:42 in
  List.iter
    (fun want -> check Alcotest.int64 "seed 42 prefix" want (Rng.bits64 r))
    [ 0xbdd732262feb6e95L; 0x28efe333b266f103L; 0x47526757130f9f52L;
      0x581ce1ff0e4ae394L ];
  let r = Rng.create ~seed:(-7) in
  List.iter
    (fun want -> check Alcotest.int64 "seed -7 prefix" want (Rng.bits64 r))
    [ 0x6c1e186443822970L; 0x7a87f4dabcf192aaL ]

let test_rng_derived_draws_match_bits () =
  (* nonneg/float/bool are pure views of the 64-bit output: check the
     bit-slicing against an independent stream of raw draws. *)
  let a = Rng.create ~seed:1234 and b = Rng.create ~seed:1234 in
  for _ = 1 to 1_000 do
    let z = Rng.bits64 a in
    let n = Rng.int b max_int in
    let want = Int64.to_int (Int64.shift_right_logical z 2) mod max_int in
    Alcotest.(check int) "nonneg slice" want n
  done;
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  for _ = 1 to 1_000 do
    let z = Rng.bits64 a in
    let f = Rng.float b 1.0 in
    let mantissa = Int64.to_int (Int64.shift_right_logical z 11) in
    let want = Float.of_int mantissa /. 9007199254740992.0 in
    Alcotest.(check (float 0.0)) "float slice" want f
  done;
  let a = Rng.create ~seed:5 and b = Rng.create ~seed:5 in
  for _ = 1 to 1_000 do
    let z = Rng.bits64 a in
    Alcotest.(check bool) "bool slice" (Int64.logand z 1L = 1L) (Rng.bool b)
  done

let test_rng_bernoulli () =
  let r = Rng.create ~seed:9 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r ~p:0.3 then incr hits
  done;
  let freq = Float.of_int !hits /. Float.of_int n in
  Alcotest.(check bool) "p=0.3" true (Float.abs (freq -. 0.3) < 0.02)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:10 in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~mean:2.0
  done;
  let mean = !acc /. Float.of_int n in
  Alcotest.(check bool) "mean near 2" true (Float.abs (mean -. 2.0) < 0.05)

let test_rng_gaussian_moments () =
  let r = Rng.create ~seed:11 in
  let n = 100_000 in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian r ~mu:1.0 ~sigma:2.0 in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let mean = !acc /. Float.of_int n in
  let var = (!acc2 /. Float.of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mu" true (Float.abs (mean -. 1.0) < 0.05);
  Alcotest.(check bool) "sigma^2" true (Float.abs (var -. 4.0) < 0.2)

let test_rng_shuffle_permutes () =
  let r = Rng.create ~seed:12 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 100 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Zipf *)

let test_zipf_range () =
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let r = Rng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let k = Zipf.sample z r in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 1000)
  done

let test_zipf_skew () =
  (* With theta=0.99 over 10k keys, the top 10 keys should carry far more
     mass than a uniform draw would (10/10000 = 0.1%). *)
  let z = Zipf.create ~n:10_000 ~theta:0.99 in
  let r = Rng.create ~seed:14 in
  let n = 100_000 in
  let top = ref 0 in
  for _ = 1 to n do
    if Zipf.sample z r < 10 then incr top
  done;
  let share = Float.of_int !top /. Float.of_int n in
  Alcotest.(check bool) "skewed head" true (share > 0.2)

let test_zipf_expected_share_monotone () =
  let z = Zipf.create ~n:1000 ~theta:0.9 in
  let s10 = Zipf.expected_top_share z ~k:10 in
  let s100 = Zipf.expected_top_share z ~k:100 in
  let s1000 = Zipf.expected_top_share z ~k:1000 in
  Alcotest.(check bool) "monotone" true (s10 < s100 && s100 < s1000);
  checkf "full mass" 1.0 s1000

let test_zipf_matches_expectation () =
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let r = Rng.create ~seed:15 in
  let n = 200_000 in
  let top100 = ref 0 in
  for _ = 1 to n do
    if Zipf.sample z r < 100 then incr top100
  done;
  let observed = Float.of_int !top100 /. Float.of_int n in
  let expected = Zipf.expected_top_share z ~k:100 in
  Alcotest.(check bool)
    (Printf.sprintf "observed %.3f vs expected %.3f" observed expected)
    true
    (Float.abs (observed -. expected) < 0.03)

let test_zipf_invalid_args () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~theta:0.5));
  Alcotest.check_raises "theta=1"
    (Invalid_argument "Zipf.create: theta must be in (0, 1)") (fun () ->
      ignore (Zipf.create ~n:10 ~theta:1.0))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_median () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  checkf "mean" 3.0 (Stats.mean s);
  checkf "median" 3.0 (Stats.median s);
  checkf "min" 1.0 (Stats.min_value s);
  checkf "max" 5.0 (Stats.max_value s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (Float.of_int i)
  done;
  checkf "p90" 90.0 (Stats.percentile s 90.0);
  checkf "p100" 100.0 (Stats.percentile s 100.0);
  checkf "p1" 1.0 (Stats.percentile s 1.0)

let test_stats_add_after_percentile () =
  (* Percentile sorts lazily; adding afterwards must still work. *)
  let s = Stats.create () in
  List.iter (Stats.add s) [ 3.0; 1.0; 2.0 ];
  checkf "median" 2.0 (Stats.median s);
  Stats.add s 10.0;
  checkf "max" 10.0 (Stats.max_value s);
  checkf "p100" 10.0 (Stats.percentile s 100.0)

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check bool) "stddev ~2.14" true
    (Float.abs (Stats.stddev s -. 2.138) < 0.01)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 1.0;
  Stats.add b 3.0;
  let m = Stats.merge a b in
  check Alcotest.int "count" 2 (Stats.count m);
  checkf "mean" 2.0 (Stats.mean m)

let test_stats_empty () =
  let s = Stats.create () in
  checkf "empty mean" 0.0 (Stats.mean s);
  check Alcotest.int "empty count" 0 (Stats.count s);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile s 50.0))

let test_histogram () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 10.0; 100.0 |] in
  List.iter (Stats.Histogram.add h) [ 0.5; 5.0; 50.0; 500.0; 7.0 ];
  check Alcotest.(array int) "counts" [| 1; 2; 1; 1 |] (Stats.Histogram.counts h);
  check Alcotest.int "total" 5 (Stats.Histogram.total h)

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:3.0 "c";
  Pqueue.push q ~time:1.0 "a";
  Pqueue.push q ~time:2.0 "b";
  let pop () = match Pqueue.pop q with Some (_, v) -> v | None -> "?" in
  check Alcotest.string "a first" "a" (pop ());
  check Alcotest.string "b second" "b" (pop ());
  check Alcotest.string "c third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  for i = 0 to 9 do
    Pqueue.push q ~time:1.0 i
  done;
  for i = 0 to 9 do
    match Pqueue.pop q with
    | Some (_, v) -> check Alcotest.int "fifo among ties" i v
    | None -> Alcotest.fail "queue exhausted early"
  done

let test_pqueue_peek () =
  let q = Pqueue.create () in
  check Alcotest.(option (float 0.0)) "empty peek" None (Pqueue.peek_time q);
  Pqueue.push q ~time:5.0 ();
  check Alcotest.(option (float 0.0)) "peek" (Some 5.0) (Pqueue.peek_time q);
  check Alcotest.int "peek does not pop" 1 (Pqueue.length q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing time order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun times ->
      let q = Pqueue.create () in
      List.iter (fun t -> Pqueue.push q ~time:t ()) times;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

(* The hybrid calendar/flat-array queue must dispatch in exactly the
   order the old binary heap did: a stable sort by (time, insertion
   sequence).  Commands drive an engine-like interleaved workload that
   exercises every internal structure: pushes at the current instant
   (the FIFO ring, incl. same-timestamp ties), in the near-horizon
   window (calendar buckets), far in the future (overflow heap), and
   adversarially behind the clock (the early heap); pops advance the
   clock like the engine does. *)
let prop_pqueue_matches_heap =
  let gen = QCheck.(list (pair (int_bound 9) (int_bound 999))) in
  QCheck.Test.make
    ~name:"pqueue dispatches identically to the reference (time,seq) heap"
    ~count:300 gen
    (fun cmds ->
      let q = Pqueue.create () in
      (* Reference model: insertion-ordered stable sort by time. *)
      let model = ref [] in
      let insert time id =
        let rec go = function
          | ((t', _) as hd) :: tl when t' <= time -> hd :: go tl
          | rest -> (time, id) :: rest
        in
        model := go !model
      in
      let clock = ref 0.0 and next_id = ref 0 and ok = ref true in
      let do_pop () =
        match (Pqueue.pop q, !model) with
        | None, [] -> ()
        | Some (t, id), (mt, mid) :: rest ->
            model := rest;
            clock := t;
            if not (t = mt && id = mid) then ok := false
        | Some _, [] | None, _ :: _ -> ok := false
      in
      List.iter
        (fun (kind, r) ->
          let push dt =
            let id = !next_id in
            incr next_id;
            insert (!clock +. dt) id;
            Pqueue.push q ~time:(!clock +. dt) id
          in
          match kind with
          | 0 | 1 | 2 -> push 0.0 (* same-instant FIFO ties *)
          | 3 | 4 -> push (float_of_int r *. 1e-8) (* near horizon *)
          | 5 -> push (float_of_int r *. 1e-6) (* across buckets *)
          | 6 -> push (float_of_int r *. 1e-3) (* overflow heap *)
          | 7 -> push (-.(float_of_int r *. 1e-7)) (* behind the clock *)
          | _ -> do_pop ())
        cmds;
      while (not (Pqueue.is_empty q)) || !model <> [] do
        do_pop ()
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Units *)

module Units = Drust_util.Units

let test_units_sizes () =
  Alcotest.(check int) "kib" 2048 (Units.kib 2);
  Alcotest.(check int) "mib" (1024 * 1024) (Units.mib 1);
  Alcotest.(check int) "gib" (1024 * 1024 * 1024) (Units.gib 1)

let test_units_times () =
  checkf "usec" 3e-6 (Units.usec 3.0);
  checkf "nsec" 5e-9 (Units.nsec 5.0);
  checkf "msec" 2e-3 (Units.msec 2.0)

let test_units_cycles () =
  checkf "1 GHz" 1e-6 (Units.cycles_to_seconds ~cycles:1000.0 ~ghz:1.0);
  checkf "roundtrip" 1000.0
    (Units.seconds_to_cycles
       ~seconds:(Units.cycles_to_seconds ~cycles:1000.0 ~ghz:2.6)
       ~ghz:2.6)

let test_units_pretty () =
  let s pp v = Format.asprintf "%a" pp v in
  Alcotest.(check string) "bytes" "512 B" (s Units.pp_bytes 512);
  Alcotest.(check string) "kib" "1.5 KiB" (s Units.pp_bytes 1536);
  Alcotest.(check string) "mib" "2.0 MiB" (s Units.pp_bytes (Units.mib 2));
  Alcotest.(check string) "ns" "250 ns" (s Units.pp_seconds 250e-9);
  Alcotest.(check string) "us" "3.60 us" (s Units.pp_seconds 3.6e-6);
  Alcotest.(check string) "ms" "1.50 ms" (s Units.pp_seconds 1.5e-3);
  Alcotest.(check string) "mops" "1.20 Mops/s" (s Units.pp_rate 1.2e6);
  Alcotest.(check string) "kops" "3.00 Kops/s" (s Units.pp_rate 3e3)

(* ------------------------------------------------------------------ *)
(* Univ *)

let test_univ_roundtrip () =
  let tag = Univ.create_tag ~name:"int-list" in
  let v = Univ.pack tag [ 1; 2; 3 ] in
  check Alcotest.(option (list int)) "roundtrip" (Some [ 1; 2; 3 ]) (Univ.unpack tag v)

let test_univ_mismatch () =
  let ti : int Univ.tag = Univ.create_tag ~name:"int" in
  let ts : string Univ.tag = Univ.create_tag ~name:"string" in
  let v = Univ.pack ti 42 in
  check Alcotest.(option string) "mismatch is None" None (Univ.unpack ts v);
  Alcotest.(check bool) "unpack_exn raises" true
    (try
       ignore (Univ.unpack_exn ts v);
       false
     with Univ.Type_mismatch _ -> true)

let test_univ_same_name_distinct () =
  let a : int Univ.tag = Univ.create_tag ~name:"x" in
  let b : int Univ.tag = Univ.create_tag ~name:"x" in
  let v = Univ.pack a 1 in
  check Alcotest.(option int) "same-name tags are distinct" None (Univ.unpack b v)

let test_univ_packed_name () =
  let tag : unit Univ.tag = Univ.create_tag ~name:"marker" in
  check Alcotest.string "name" "marker" (Univ.packed_name (Univ.pack tag ()))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy;
          Alcotest.test_case "golden sequence" `Quick test_rng_golden_sequence;
          Alcotest.test_case "derived draws match bits" `Quick
            test_rng_derived_draws_match_bits;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "range" `Quick test_zipf_range;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "share monotone" `Quick test_zipf_expected_share_monotone;
          Alcotest.test_case "matches expectation" `Quick test_zipf_matches_expectation;
          Alcotest.test_case "invalid args" `Quick test_zipf_invalid_args;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/median" `Quick test_stats_mean_median;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "add after percentile" `Quick test_stats_add_after_percentile;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "peek" `Quick test_pqueue_peek;
          QCheck_alcotest.to_alcotest prop_pqueue_sorted;
          QCheck_alcotest.to_alcotest prop_pqueue_matches_heap;
        ] );
      ( "units",
        [
          Alcotest.test_case "sizes" `Quick test_units_sizes;
          Alcotest.test_case "times" `Quick test_units_times;
          Alcotest.test_case "cycles" `Quick test_units_cycles;
          Alcotest.test_case "pretty" `Quick test_units_pretty;
        ] );
      ( "univ",
        [
          Alcotest.test_case "roundtrip" `Quick test_univ_roundtrip;
          Alcotest.test_case "mismatch" `Quick test_univ_mismatch;
          Alcotest.test_case "same-name distinct" `Quick test_univ_same_name_distinct;
          Alcotest.test_case "packed name" `Quick test_univ_packed_name;
        ] );
    ]
