(* Fault injection and automatic failover: the fabric's failure semantics
   (Node_down, blackholed partitions, seeded drops, timeouts, retries)
   and the controller's heartbeat detector driving backup promotion with
   zero application involvement. *)

module Engine = Drust_sim.Engine
module Fault = Drust_sim.Fault
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module Fabric = Drust_net.Fabric
module Controller = Drust_runtime.Controller
module Replication = Drust_runtime.Replication
module P = Drust_core.Protocol
module Rng = Drust_util.Rng
module Univ = Drust_util.Univ

let int_tag : int Univ.tag = Univ.create_tag ~name:"repl.int"
let pack = Univ.pack int_tag
let unpack v = Univ.unpack_exn int_tag v

let small_params nodes =
  {
    Params.default with
    Params.nodes;
    cores_per_node = 4;
    mem_per_node = Drust_util.Units.mib 64;
  }

let in_cluster ?(nodes = 4) body =
  let cluster = Cluster.create (small_params nodes) in
  let plan =
    Fault.create
      ~engine:(Cluster.engine cluster)
      ~rng:(Rng.create ~seed:5) ~nodes ()
  in
  Fabric.set_fault_plan (Cluster.fabric cluster) plan;
  let result = ref None in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         result := Some (body cluster plan ctx)));
  Cluster.run cluster;
  match !result with Some v -> v | None -> Alcotest.fail "body did not run"

(* ------------------------------------------------------------------ *)
(* Fault plan semantics *)

let test_plan_is_lazy () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      Fault.crash_at plan ~node:2 ~at:1e-3;
      Alcotest.(check bool) "not down before its time" false
        (Fault.is_down plan 2);
      Alcotest.(check (list int)) "nobody crashed yet" [] (Fault.crashed_nodes plan);
      Engine.delay engine 2e-3;
      Alcotest.(check bool) "down after its time" true (Fault.is_down plan 2);
      Alcotest.(check (list int)) "listed" [ 2 ] (Fault.crashed_nodes plan);
      Alcotest.(check (option (float 1e-9))) "crash time" (Some 1e-3)
        (Fault.crash_time plan 2))

let test_partition_severs_across_but_not_within () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      Fault.partition_at plan ~group:[ 0; 1 ] ~at:0.0 ~heal_at:1e-3;
      Alcotest.(check bool) "across" true (Fault.severed plan ~from:0 ~target:2);
      Alcotest.(check bool) "within group" false
        (Fault.severed plan ~from:0 ~target:1);
      Alcotest.(check bool) "within rest" false
        (Fault.severed plan ~from:2 ~target:3);
      Engine.delay engine 2e-3;
      Alcotest.(check bool) "healed" false (Fault.severed plan ~from:0 ~target:2))

(* ------------------------------------------------------------------ *)
(* Fabric failure semantics *)

let test_node_down_raised () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      let fabric = Cluster.fabric cluster in
      Fault.crash_at plan ~node:2 ~at:(Engine.now engine);
      (match Fabric.rdma_read fabric ~from:0 ~target:2 ~bytes:64 with
      | () -> Alcotest.fail "read to a crashed node must raise"
      | exception Fabric.Node_down n ->
          Alcotest.(check int) "carries the dead node" 2 n);
      (* A verb issued *from* the dead node dies too. *)
      match Fabric.rpc fabric ~from:2 ~target:0 ~req_bytes:8 ~resp_bytes:8
              (fun () -> ())
      with
      | () -> Alcotest.fail "verb from a crashed node must raise"
      | exception Fabric.Node_down n -> Alcotest.(check int) "from" 2 n)

let test_async_drops_silently () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      let fabric = Cluster.fabric cluster in
      Fault.crash_at plan ~node:2 ~at:(Engine.now engine);
      let landed = ref false in
      Fabric.rdma_write_async fabric ~from:0 ~target:2 ~bytes:64 (fun () ->
          landed := true);
      Engine.delay engine 1e-3;
      Alcotest.(check bool) "payload never lands" false !landed;
      Alcotest.(check bool) "drop counted" true
        ((Fabric.counters_of fabric 0).Fabric.drops > 0))

let test_partition_times_out () =
  in_cluster (fun cluster plan _ctx ->
      let fabric = Cluster.fabric cluster in
      Fault.partition_at plan ~group:[ 0 ] ~at:0.0 ~heal_at:10e-3;
      (match
         Fabric.rpc_with_timeout fabric ~from:0 ~target:1 ~req_bytes:8
           ~resp_bytes:8 ~timeout:2e-4 (fun () -> 41)
       with
      | _ -> Alcotest.fail "partitioned rpc must time out"
      | exception Fabric.Rpc_timeout { from; target; _ } ->
          Alcotest.(check int) "from" 0 from;
          Alcotest.(check int) "target" 1 target);
      Alcotest.(check bool) "timeout counted" true
        ((Fabric.counters_of fabric 0).Fabric.timeouts > 0))

let test_retry_spans_heal () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      let fabric = Cluster.fabric cluster in
      Fault.partition_at plan ~group:[ 0 ] ~at:0.0 ~heal_at:1e-3;
      let v =
        Fabric.retry_with_backoff fabric ~from:0 ~base_delay:3e-4 (fun () ->
            Fabric.rpc_with_timeout fabric ~from:0 ~target:1 ~req_bytes:8
              ~resp_bytes:8 ~timeout:2e-4 (fun () -> 42))
      in
      Alcotest.(check int) "succeeds after the heal" 42 v;
      Alcotest.(check bool) "past the heal" true (Engine.now engine >= 1e-3);
      Alcotest.(check bool) "retries counted" true
        ((Fabric.counters_of fabric 0).Fabric.retries > 0))

let test_retry_gives_up () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      let fabric = Cluster.fabric cluster in
      Fault.crash_at plan ~node:3 ~at:(Engine.now engine);
      match
        Fabric.retry_with_backoff fabric ~from:0 ~attempts:3 (fun () ->
            Fabric.rdma_read fabric ~from:0 ~target:3 ~bytes:8)
      with
      | () -> Alcotest.fail "dead forever: retries must be exhausted"
      | exception Fabric.Node_down n -> Alcotest.(check int) "re-raised" 3 n)

let drop_run () =
  let nodes = 4 in
  let cluster = Cluster.create (small_params nodes) in
  let engine = Cluster.engine cluster in
  let fabric = Cluster.fabric cluster in
  let plan = Fault.create ~engine ~rng:(Rng.create ~seed:9) ~nodes () in
  Fault.degrade_link plan ~from:0 ~target:1 ~drop:0.5 ();
  Fabric.set_fault_plan fabric plan;
  let landed = ref 0 in
  ignore
    (Engine.spawn engine (fun () ->
         for _ = 1 to 100 do
           Fabric.rdma_write_async fabric ~from:0 ~target:1 ~bytes:32 (fun () ->
               incr landed)
         done));
  Cluster.run cluster;
  (!landed, (Fabric.counters_of fabric 0).Fabric.drops)

let test_seeded_drops_deterministic () =
  let l1, d1 = drop_run () in
  let l2, d2 = drop_run () in
  Alcotest.(check bool) "some dropped" true (d1 > 0);
  Alcotest.(check bool) "some landed" true (l1 > 0);
  Alcotest.(check int) "landed identical" l1 l2;
  Alcotest.(check int) "drops identical" d1 d2

(* ------------------------------------------------------------------ *)
(* Heartbeat detector and automatic promotion *)

let test_detector_promotes_automatically () =
  in_cluster (fun cluster plan ctx ->
      let engine = Cluster.engine cluster in
      let fabric = Cluster.fabric cluster in
      let o = P.create_on ctx ~node:1 ~size:64 (pack 7) in
      let repl = Replication.enable cluster in
      let ctrl =
        Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
          ~miss_threshold:3 ~replication:repl cluster
      in
      (* Inject the crash; nobody calls fail_and_promote. *)
      Fault.crash_at plan ~node:1 ~at:(Engine.now engine);
      while Controller.deaths ctrl = [] && Engine.now engine < 20e-3 do
        Engine.delay engine 0.5e-3
      done;
      (match Controller.deaths ctrl with
      | [ (n, at) ] ->
          Alcotest.(check int) "declared the victim dead" 1 n;
          Alcotest.(check bool) "within 5 probe intervals" true (at < 5e-3)
      | _ -> Alcotest.fail "expected exactly one death verdict");
      Alcotest.(check int) "backup promoted" 2 (Cluster.serving_node cluster 1);
      Alcotest.(check bool) "marked dead" false (Cluster.node cluster 1).Cluster.alive;
      (* Retried reads land on the promoted server. *)
      let v =
        Fabric.retry_with_backoff fabric ~from:ctx.Ctx.node (fun () ->
            unpack (P.owner_read ctx o))
      in
      Alcotest.(check int) "snapshot value survives" 7 v;
      Controller.stop ctrl;
      Replication.disable repl)

let test_transient_partition_no_false_positive () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      let repl = Replication.enable cluster in
      let ctrl =
        Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
          ~miss_threshold:3 ~replication:repl cluster
      in
      (* One missed probe at most: far below the K=3 threshold. *)
      Fault.partition_at plan ~group:[ 1 ] ~at:0.2e-3 ~heal_at:0.9e-3;
      Engine.delay engine 6e-3;
      Alcotest.(check (list (pair int (float 1e-9)))) "no verdicts" []
        (Controller.deaths ctrl);
      Alcotest.(check bool) "still alive" true (Cluster.node cluster 1).Cluster.alive;
      Controller.stop ctrl;
      Replication.disable repl)

let test_detector_double_failure_two_replicas () =
  in_cluster (fun cluster plan ctx ->
      let engine = Cluster.engine cluster in
      let o = P.create_on ctx ~node:1 ~size:64 (pack 9) in
      let repl = Replication.enable ~replicas:2 cluster in
      let ctrl =
        Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
          ~miss_threshold:3 ~replication:repl cluster
      in
      (* Node 1's replicas live on nodes 2 and 3; kill 1, then its first
         backup, and the detector must walk the ring twice. *)
      Fault.crash_at plan ~node:1 ~at:1e-3;
      Fault.crash_at plan ~node:2 ~at:8e-3;
      while
        List.length (Controller.deaths ctrl) < 2 && Engine.now engine < 30e-3
      do
        Engine.delay engine 0.5e-3
      done;
      Alcotest.(check (list int)) "both declared dead" [ 1; 2 ]
        (List.map fst (Controller.deaths ctrl));
      Alcotest.(check int) "served by the second replica" 3
        (Cluster.serving_node cluster 1);
      Alcotest.(check int) "value intact" 9 (unpack (P.owner_read ctx o));
      Controller.stop ctrl;
      Replication.disable repl)

(* ------------------------------------------------------------------ *)
(* Batching and read-through (no faults involved) *)

let test_batching_and_promoted_read_through () =
  in_cluster (fun cluster ctx_plan ctx ->
      ignore ctx_plan;
      let o = P.create_on ctx ~node:1 ~size:64 (pack 1) in
      let repl = Replication.enable cluster in
      let m = P.borrow_mut ctx o in
      P.mut_write ctx m (pack 2);
      P.drop_mut ctx m;
      Alcotest.(check bool) "write batched, not yet flushed" true
        (Replication.pending_writes repl > 0);
      P.transfer ctx o ~to_node:2;
      Alcotest.(check int) "escape flushes the batch" 0
        (Replication.pending_writes repl);
      Replication.sync_now ctx repl;
      let victim =
        Cluster.serving_node cluster (Drust_memory.Gaddr.node_of (P.gaddr o))
      in
      Replication.fail_and_promote ctx repl ~node:victim;
      Alcotest.(check int) "promoted read-through" 2 (unpack (P.owner_read ctx o));
      Replication.disable repl)

let () =
  Alcotest.run "replication"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "lazy crash schedule" `Quick test_plan_is_lazy;
          Alcotest.test_case "partition membership" `Quick
            test_partition_severs_across_but_not_within;
        ] );
      ( "fabric-faults",
        [
          Alcotest.test_case "node_down raised" `Quick test_node_down_raised;
          Alcotest.test_case "async drops silently" `Quick
            test_async_drops_silently;
          Alcotest.test_case "partition times out" `Quick test_partition_times_out;
          Alcotest.test_case "retry spans heal" `Quick test_retry_spans_heal;
          Alcotest.test_case "retry gives up" `Quick test_retry_gives_up;
          Alcotest.test_case "seeded drops deterministic" `Quick
            test_seeded_drops_deterministic;
        ] );
      ( "detector",
        [
          Alcotest.test_case "automatic promotion" `Quick
            test_detector_promotes_automatically;
          Alcotest.test_case "no false positive" `Quick
            test_transient_partition_no_false_positive;
          Alcotest.test_case "double failure, two replicas" `Quick
            test_detector_double_failure_two_replicas;
        ] );
      ( "batching",
        [
          Alcotest.test_case "batch+read-through" `Quick
            test_batching_and_promoted_read_through;
        ] );
    ]
