(* Fault injection and automatic failover: the fabric's failure semantics
   (Node_down, blackholed partitions, seeded drops, timeouts, retries)
   and the controller's heartbeat detector driving backup promotion with
   zero application involvement. *)

module Engine = Drust_sim.Engine
module Fault = Drust_sim.Fault
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module Fabric = Drust_net.Fabric
module Controller = Drust_runtime.Controller
module Replication = Drust_runtime.Replication
module Membership = Drust_runtime.Membership
module P = Drust_core.Protocol
module Rng = Drust_util.Rng
module Univ = Drust_util.Univ

let int_tag : int Univ.tag = Univ.create_tag ~name:"repl.int"
let pack = Univ.pack int_tag
let unpack v = Univ.unpack_exn int_tag v

let small_params nodes =
  {
    Params.default with
    Params.nodes;
    cores_per_node = 4;
    mem_per_node = Drust_util.Units.mib 64;
  }

let in_cluster ?(nodes = 4) body =
  let cluster = Cluster.create (small_params nodes) in
  let plan =
    Fault.create
      ~engine:(Cluster.engine cluster)
      ~rng:(Rng.create ~seed:5) ~nodes ()
  in
  Fabric.set_fault_plan (Cluster.fabric cluster) plan;
  let result = ref None in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         result := Some (body cluster plan ctx)));
  Cluster.run cluster;
  match !result with Some v -> v | None -> Alcotest.fail "body did not run"

(* ------------------------------------------------------------------ *)
(* Fault plan semantics *)

let test_plan_is_lazy () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      Fault.crash_at plan ~node:2 ~at:1e-3;
      Alcotest.(check bool) "not down before its time" false
        (Fault.is_down plan 2);
      Alcotest.(check (list int)) "nobody crashed yet" [] (Fault.crashed_nodes plan);
      Engine.delay engine 2e-3;
      Alcotest.(check bool) "down after its time" true (Fault.is_down plan 2);
      Alcotest.(check (list int)) "listed" [ 2 ] (Fault.crashed_nodes plan);
      Alcotest.(check (option (float 1e-9))) "crash time" (Some 1e-3)
        (Fault.crash_time plan 2))

let test_partition_severs_across_but_not_within () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      Fault.partition_at plan ~group:[ 0; 1 ] ~at:0.0 ~heal_at:1e-3;
      Alcotest.(check bool) "across" true (Fault.severed plan ~from:0 ~target:2);
      Alcotest.(check bool) "within group" false
        (Fault.severed plan ~from:0 ~target:1);
      Alcotest.(check bool) "within rest" false
        (Fault.severed plan ~from:2 ~target:3);
      Engine.delay engine 2e-3;
      Alcotest.(check bool) "healed" false (Fault.severed plan ~from:0 ~target:2))

(* ------------------------------------------------------------------ *)
(* Fabric failure semantics *)

let test_node_down_raised () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      let fabric = Cluster.fabric cluster in
      Fault.crash_at plan ~node:2 ~at:(Engine.now engine);
      (match Fabric.rdma_read fabric ~from:0 ~target:2 ~bytes:64 with
      | () -> Alcotest.fail "read to a crashed node must raise"
      | exception Fabric.Node_down n ->
          Alcotest.(check int) "carries the dead node" 2 n);
      (* A verb issued *from* the dead node dies too. *)
      match Fabric.rpc fabric ~from:2 ~target:0 ~req_bytes:8 ~resp_bytes:8
              (fun () -> ())
      with
      | () -> Alcotest.fail "verb from a crashed node must raise"
      | exception Fabric.Node_down n -> Alcotest.(check int) "from" 2 n)

let test_async_drops_silently () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      let fabric = Cluster.fabric cluster in
      Fault.crash_at plan ~node:2 ~at:(Engine.now engine);
      let landed = ref false in
      Fabric.rdma_write_async fabric ~from:0 ~target:2 ~bytes:64 (fun () ->
          landed := true);
      Engine.delay engine 1e-3;
      Alcotest.(check bool) "payload never lands" false !landed;
      Alcotest.(check bool) "drop counted" true
        ((Fabric.counters_of fabric 0).Fabric.drops > 0))

let test_partition_times_out () =
  in_cluster (fun cluster plan _ctx ->
      let fabric = Cluster.fabric cluster in
      Fault.partition_at plan ~group:[ 0 ] ~at:0.0 ~heal_at:10e-3;
      (match
         Fabric.rpc_with_timeout fabric ~from:0 ~target:1 ~req_bytes:8
           ~resp_bytes:8 ~timeout:2e-4 (fun () -> 41)
       with
      | _ -> Alcotest.fail "partitioned rpc must time out"
      | exception Fabric.Rpc_timeout { from; target; _ } ->
          Alcotest.(check int) "from" 0 from;
          Alcotest.(check int) "target" 1 target);
      Alcotest.(check bool) "timeout counted" true
        ((Fabric.counters_of fabric 0).Fabric.timeouts > 0))

let test_retry_spans_heal () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      let fabric = Cluster.fabric cluster in
      Fault.partition_at plan ~group:[ 0 ] ~at:0.0 ~heal_at:1e-3;
      let v =
        Fabric.retry_with_backoff fabric ~from:0 ~base_delay:3e-4 (fun () ->
            Fabric.rpc_with_timeout fabric ~from:0 ~target:1 ~req_bytes:8
              ~resp_bytes:8 ~timeout:2e-4 (fun () -> 42))
      in
      Alcotest.(check int) "succeeds after the heal" 42 v;
      Alcotest.(check bool) "past the heal" true (Engine.now engine >= 1e-3);
      Alcotest.(check bool) "retries counted" true
        ((Fabric.counters_of fabric 0).Fabric.retries > 0))

let test_retry_gives_up () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      let fabric = Cluster.fabric cluster in
      Fault.crash_at plan ~node:3 ~at:(Engine.now engine);
      match
        Fabric.retry_with_backoff fabric ~from:0 ~attempts:3 (fun () ->
            Fabric.rdma_read fabric ~from:0 ~target:3 ~bytes:8)
      with
      | () -> Alcotest.fail "dead forever: retries must be exhausted"
      | exception Fabric.Node_down n -> Alcotest.(check int) "re-raised" 3 n)

let drop_run () =
  let nodes = 4 in
  let cluster = Cluster.create (small_params nodes) in
  let engine = Cluster.engine cluster in
  let fabric = Cluster.fabric cluster in
  let plan = Fault.create ~engine ~rng:(Rng.create ~seed:9) ~nodes () in
  Fault.degrade_link plan ~from:0 ~target:1 ~drop:0.5 ();
  Fabric.set_fault_plan fabric plan;
  let landed = ref 0 in
  ignore
    (Engine.spawn engine (fun () ->
         for _ = 1 to 100 do
           Fabric.rdma_write_async fabric ~from:0 ~target:1 ~bytes:32 (fun () ->
               incr landed)
         done));
  Cluster.run cluster;
  (!landed, (Fabric.counters_of fabric 0).Fabric.drops)

let test_seeded_drops_deterministic () =
  let l1, d1 = drop_run () in
  let l2, d2 = drop_run () in
  Alcotest.(check bool) "some dropped" true (d1 > 0);
  Alcotest.(check bool) "some landed" true (l1 > 0);
  Alcotest.(check int) "landed identical" l1 l2;
  Alcotest.(check int) "drops identical" d1 d2

(* ------------------------------------------------------------------ *)
(* Heartbeat detector and automatic promotion *)

let test_detector_promotes_automatically () =
  in_cluster (fun cluster plan ctx ->
      let engine = Cluster.engine cluster in
      let fabric = Cluster.fabric cluster in
      let o = P.create_on ctx ~node:1 ~size:64 (pack 7) in
      let repl = Replication.enable cluster in
      let ctrl =
        Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
          ~miss_threshold:3 ~replication:repl cluster
      in
      (* Inject the crash; nobody calls fail_and_promote. *)
      Fault.crash_at plan ~node:1 ~at:(Engine.now engine);
      while Controller.deaths ctrl = [] && Engine.now engine < 20e-3 do
        Engine.delay engine 0.5e-3
      done;
      (match Controller.deaths ctrl with
      | [ (n, at) ] ->
          Alcotest.(check int) "declared the victim dead" 1 n;
          Alcotest.(check bool) "within 5 probe intervals" true (at < 5e-3)
      | _ -> Alcotest.fail "expected exactly one death verdict");
      Alcotest.(check int) "backup promoted" 2 (Cluster.serving_node cluster 1);
      Alcotest.(check bool) "marked dead" false (Cluster.node cluster 1).Cluster.alive;
      (* Retried reads land on the promoted server. *)
      let v =
        Fabric.retry_with_backoff fabric ~from:ctx.Ctx.node (fun () ->
            unpack (P.owner_read ctx o))
      in
      Alcotest.(check int) "snapshot value survives" 7 v;
      Controller.stop ctrl;
      Replication.disable repl)

let test_transient_partition_no_false_positive () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      let repl = Replication.enable cluster in
      let ctrl =
        Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
          ~miss_threshold:3 ~replication:repl cluster
      in
      (* One missed probe at most: far below the K=3 threshold. *)
      Fault.partition_at plan ~group:[ 1 ] ~at:0.2e-3 ~heal_at:0.9e-3;
      Engine.delay engine 6e-3;
      Alcotest.(check (list (pair int (float 1e-9)))) "no verdicts" []
        (Controller.deaths ctrl);
      Alcotest.(check bool) "still alive" true (Cluster.node cluster 1).Cluster.alive;
      Controller.stop ctrl;
      Replication.disable repl)

let test_detector_double_failure_two_replicas () =
  in_cluster (fun cluster plan ctx ->
      let engine = Cluster.engine cluster in
      let o = P.create_on ctx ~node:1 ~size:64 (pack 9) in
      let repl = Replication.enable ~replicas:2 cluster in
      let ctrl =
        Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
          ~miss_threshold:3 ~replication:repl cluster
      in
      (* Node 1's replicas live on nodes 2 and 3; kill 1, then its first
         backup, and the detector must walk the ring twice. *)
      Fault.crash_at plan ~node:1 ~at:1e-3;
      Fault.crash_at plan ~node:2 ~at:8e-3;
      while
        List.length (Controller.deaths ctrl) < 2 && Engine.now engine < 30e-3
      do
        Engine.delay engine 0.5e-3
      done;
      Alcotest.(check (list int)) "both declared dead" [ 1; 2 ]
        (List.map fst (Controller.deaths ctrl));
      Alcotest.(check int) "served by the second replica" 3
        (Cluster.serving_node cluster 1);
      Alcotest.(check int) "value intact" 9 (unpack (P.owner_read ctx o));
      Controller.stop ctrl;
      Replication.disable repl)

(* A transient partition long enough to stack [miss_threshold] timeouts
   but shorter than [miss_threshold × probe_interval] must NOT trigger a
   promotion: the detector's grace floor (silence since the last good
   probe) has to absorb the miss streak.  The window is aligned so node
   1 misses three consecutive probes — without the grace period this
   exact schedule declared it dead. *)
let test_grace_absorbs_miss_streak () =
  in_cluster (fun cluster plan _ctx ->
      let engine = Cluster.engine cluster in
      let repl = Replication.enable cluster in
      let ctrl =
        Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
          ~miss_threshold:3 ~replication:repl cluster
      in
      Fault.transient_partition plan ~group:[ 1 ] ~at:1.02e-3
        ~duration:1.47e-3;
      Engine.delay engine 10e-3;
      let snap = Drust_obs.Metrics.snapshot (Cluster.metrics cluster) in
      Alcotest.(check bool) "the miss streak reached the threshold" true
        (Drust_obs.Metrics.total snap "controller.heartbeat_misses" >= 3);
      Alcotest.(check (list (pair int (float 1e-9)))) "no verdicts" []
        (Controller.deaths ctrl);
      Alcotest.(check bool) "still alive" true
        (Cluster.node cluster 1).Cluster.alive;
      Controller.stop ctrl;
      Replication.disable repl)

(* Cascading failure past the replication factor: with one replica,
   killing a primary and then the backup that inherited its range must
   leave the range explicitly unrecoverable — reported by the manager,
   not raised through the controller daemon. *)
let test_cascading_failure_reports_unrecoverable () =
  in_cluster (fun cluster plan ctx ->
      let engine = Cluster.engine cluster in
      let o = P.create_on ctx ~node:1 ~size:64 (pack 7) in
      let repl = Replication.enable cluster in
      let ctrl =
        Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
          ~miss_threshold:3 ~replication:repl cluster
      in
      Fault.crash_at plan ~node:1 ~at:1e-3;
      Fault.crash_at plan ~node:2 ~at:10e-3;
      while
        List.length (Controller.deaths ctrl) < 2 && Engine.now engine < 40e-3
      do
        Engine.delay engine 0.5e-3
      done;
      Alcotest.(check (list int)) "both declared dead" [ 1; 2 ]
        (List.map fst (Controller.deaths ctrl));
      (* Range 1's only replica host (node 2) is dead: the range stays
         mapped to the dead server and is reported, nothing raises. *)
      Alcotest.(check (list int)) "range 1 unrecoverable" [ 1 ]
        (Replication.unrecoverable_ranges repl);
      (match P.owner_read ctx o with
      | _ -> Alcotest.fail "reading an unrecoverable range must raise"
      | exception Fabric.Node_down _ -> ());
      (* The rest of the cluster still works. *)
      let p = P.create_on ctx ~node:3 ~size:64 (pack 11) in
      Alcotest.(check int) "survivors serve" 11 (unpack (P.owner_read ctx p));
      Controller.stop ctrl;
      Replication.disable repl)

(* ------------------------------------------------------------------ *)
(* Epoch-stamped verbs *)

let test_stale_epoch_rejected_then_retried () =
  in_cluster (fun cluster _plan _ctx ->
      let fabric = Cluster.fabric cluster in
      let epoch = ref 0 in
      Fabric.set_epoch_source fabric (Some (fun () -> !epoch));
      (* Current epoch: accepted. *)
      Fabric.rdma_read fabric ~from:0 ~target:1 ~bytes:16 ~epoch:0;
      (* The view moves on: a verb still stamped 0 is NAKed at serve
         time with the live epoch attached. *)
      epoch := 3;
      (match Fabric.rdma_read fabric ~from:0 ~target:1 ~bytes:16 ~epoch:0 with
      | () -> Alcotest.fail "stale epoch must be rejected"
      | exception Fabric.Stale_epoch { seen; current; _ } ->
          Alcotest.(check int) "seen" 0 seen;
          Alcotest.(check int) "current" 3 current);
      Alcotest.(check bool) "rejection counted" true
        ((Fabric.counters_of fabric 0).Fabric.stale_epochs > 0);
      (* A client that re-reads its view on every attempt recovers: the
         first attempt is NAKed, the retry carries the fresh epoch. *)
      let known = ref 0 in
      let attempts = ref 0 in
      let v =
        Fabric.retry_with_backoff fabric ~from:0 ~base_delay:1e-4 (fun () ->
            incr attempts;
            let e = !known in
            known := !epoch;
            Fabric.rdma_read fabric ~from:0 ~target:1 ~bytes:16 ~epoch:e;
            42)
      in
      Alcotest.(check int) "succeeds on retry" 42 v;
      Alcotest.(check bool) "took more than one attempt" true (!attempts > 1);
      Fabric.set_epoch_source fabric None)

(* ------------------------------------------------------------------ *)
(* Elastic membership: join / leave / crash-during-handoff *)

let test_membership_join_and_leave () =
  in_cluster (fun cluster _plan ctx ->
      let engine = Cluster.engine cluster in
      let o = P.create_on ctx ~node:1 ~size:4096 (pack 5) in
      P.pin ctx o;
      let repl = Replication.enable cluster in
      let m = Membership.create ~active:3 cluster ~replication:repl in
      Alcotest.(check bool) "standby not active" false
        (Membership.is_active m ~node:3);
      (* Join: node 3 activates and pulls a range off the most-loaded
         member — node 1, whose range holds the object. *)
      (match Membership.join ctx m ~node:3 with
      | Ok (Some 1) -> ()
      | Ok h ->
          Alcotest.failf "expected to inherit range 1, got %s"
            (match h with Some n -> string_of_int n | None -> "none")
      | Error _ -> Alcotest.fail "join failed");
      Alcotest.(check int) "range 1 served by the joiner" 3
        (Cluster.serving_node cluster 1);
      Alcotest.(check int) "value survived the handoff" 5
        (unpack (P.owner_read ctx o));
      let e_after_join = Membership.epoch m in
      Alcotest.(check bool) "join bumped the epoch" true (e_after_join >= 2);
      Alcotest.(check int) "coordinator knows the epoch" e_after_join
        (Membership.known_epoch m ~node:0);
      Engine.delay engine 1e-3;
      Alcotest.(check int) "announcement reached node 2" e_after_join
        (Membership.known_epoch m ~node:2);
      (* Graceful leave: every range node 3 serves moves to the
         least-loaded survivor — the inherited range 1 and its own
         (empty) native range 3 — and the node returns to standby. *)
      (match Membership.leave ctx m ~node:3 with
      | Ok moved ->
          Alcotest.(check bool) "leave moved range 1" true (List.mem 1 moved)
      | Error _ -> Alcotest.fail "leave failed");
      Alcotest.(check bool) "back to standby" false
        (Membership.is_active m ~node:3);
      Alcotest.(check bool) "inheritor is an active member" true
        (Cluster.serving_node cluster 1 < 3);
      Alcotest.(check int) "value survived the leave" 5
        (unpack (P.owner_read ctx o));
      Alcotest.(check bool) "epoch kept climbing" true
        (Membership.epoch m > e_after_join);
      Membership.detach m;
      Replication.disable repl)

let test_crash_during_handoff_falls_back_to_promotion () =
  in_cluster (fun cluster plan ctx ->
      let engine = Cluster.engine cluster in
      (* Big enough that the bulk copy spans several 64 KiB chunks: the
         chunk boundaries are where a mid-handoff crash surfaces. *)
      let o = P.create_on ctx ~node:1 ~size:(512 * 1024) (pack 13) in
      P.pin ctx o;
      let repl = Replication.enable cluster in
      let m = Membership.create cluster ~replication:repl in
      let ctrl =
        Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
          ~miss_threshold:3 ~replication:repl ~membership:m cluster
      in
      (* Saboteur: fail-stop the departing server as soon as the
         transfer is in flight. *)
      ignore
        (Engine.spawn engine (fun () ->
             let armed = ref true in
             while !armed && Engine.now engine < 20e-3 do
               Engine.delay engine 2e-5;
               match Membership.in_flight_handoff m with
               | Some (1, 1, 2) ->
                   Fault.crash_at plan ~node:1 ~at:(Engine.now engine);
                   armed := false
               | _ -> ()
             done));
      (match Membership.handoff ctx m ~home:1 ~to_node:2 with
      | Error (`Aborted _) -> ()
      | Ok () -> Alcotest.fail "sabotaged handoff must abort"
      | Error (`Refused r) -> Alcotest.failf "refused instead of aborted: %s" r);
      (* Clean abort: the serving map never changed... *)
      Alcotest.(check int) "serving map untouched by the abort" 1
        (Cluster.serving_node cluster 1);
      (* ...and the ordinary failover path recovers the range. *)
      while Controller.deaths ctrl = [] && Engine.now engine < 40e-3 do
        Engine.delay engine 0.5e-3
      done;
      Alcotest.(check (list int)) "detector declared the victim" [ 1 ]
        (List.map fst (Controller.deaths ctrl));
      Alcotest.(check int) "promoted to the ring backup" 2
        (Cluster.serving_node cluster 1);
      Alcotest.(check int) "value recovered from the backup" 13
        (unpack (P.owner_read ctx o));
      Controller.stop ctrl;
      Membership.detach m;
      Replication.disable repl)

(* ------------------------------------------------------------------ *)
(* Batching and read-through (no faults involved) *)

let test_batching_and_promoted_read_through () =
  in_cluster (fun cluster ctx_plan ctx ->
      ignore ctx_plan;
      let o = P.create_on ctx ~node:1 ~size:64 (pack 1) in
      let repl = Replication.enable cluster in
      let m = P.borrow_mut ctx o in
      P.mut_write ctx m (pack 2);
      P.drop_mut ctx m;
      Alcotest.(check bool) "write batched, not yet flushed" true
        (Replication.pending_writes repl > 0);
      P.transfer ctx o ~to_node:2;
      Alcotest.(check int) "escape flushes the batch" 0
        (Replication.pending_writes repl);
      Replication.sync_now ctx repl;
      let victim =
        Cluster.serving_node cluster (Drust_memory.Gaddr.node_of (P.gaddr o))
      in
      Replication.fail_and_promote ctx repl ~node:victim;
      Alcotest.(check int) "promoted read-through" 2 (unpack (P.owner_read ctx o));
      Replication.disable repl)

let () =
  Alcotest.run "replication"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "lazy crash schedule" `Quick test_plan_is_lazy;
          Alcotest.test_case "partition membership" `Quick
            test_partition_severs_across_but_not_within;
        ] );
      ( "fabric-faults",
        [
          Alcotest.test_case "node_down raised" `Quick test_node_down_raised;
          Alcotest.test_case "async drops silently" `Quick
            test_async_drops_silently;
          Alcotest.test_case "partition times out" `Quick test_partition_times_out;
          Alcotest.test_case "retry spans heal" `Quick test_retry_spans_heal;
          Alcotest.test_case "retry gives up" `Quick test_retry_gives_up;
          Alcotest.test_case "seeded drops deterministic" `Quick
            test_seeded_drops_deterministic;
        ] );
      ( "detector",
        [
          Alcotest.test_case "automatic promotion" `Quick
            test_detector_promotes_automatically;
          Alcotest.test_case "no false positive" `Quick
            test_transient_partition_no_false_positive;
          Alcotest.test_case "double failure, two replicas" `Quick
            test_detector_double_failure_two_replicas;
          Alcotest.test_case "grace absorbs a miss streak" `Quick
            test_grace_absorbs_miss_streak;
          Alcotest.test_case "cascading failure reported" `Quick
            test_cascading_failure_reports_unrecoverable;
        ] );
      ( "membership",
        [
          Alcotest.test_case "stale epoch NAK + retry" `Quick
            test_stale_epoch_rejected_then_retried;
          Alcotest.test_case "join and leave" `Quick
            test_membership_join_and_leave;
          Alcotest.test_case "crash mid-handoff falls back" `Quick
            test_crash_during_handoff_falls_back_to_promotion;
        ] );
      ( "batching",
        [
          Alcotest.test_case "batch+read-through" `Quick
            test_batching_and_promoted_read_through;
        ] );
    ]
