(* Tests for the machine layer: cluster parameters, node plumbing, the
   partition-serving map used by failover, global-heap state operations,
   per-thread contexts (compute batching, counters, safe points), the
   per-cluster Env record, and the no-leak guarantee it provides. *)

module Engine = Drust_sim.Engine
module Params = Drust_machine.Params
module Cluster = Drust_machine.Cluster
module Ctx = Drust_machine.Ctx
module Env = Drust_machine.Env
module Partition = Drust_memory.Partition
module Gaddr = Drust_memory.Gaddr
module Univ = Drust_util.Univ
module P = Drust_core.Protocol
module Dthread = Drust_runtime.Dthread

let int_tag : int Univ.tag = Univ.create_tag ~name:"mach.int"
let pack = Univ.pack int_tag
let unpack v = Univ.unpack_exn int_tag v

let small nodes =
  {
    Params.default with
    Params.nodes;
    cores_per_node = 2;
    mem_per_node = Drust_util.Units.mib 1;
  }

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params_defaults_match_testbed () =
  let p = Params.default in
  Alcotest.(check int) "8 nodes" 8 p.Params.nodes;
  Alcotest.(check int) "16 cores" 16 p.Params.cores_per_node;
  Alcotest.(check (float 1e-9)) "2.6 GHz" 2.6 p.Params.ghz

let test_params_with_nodes () =
  let p = Params.with_nodes Params.default 3 in
  Alcotest.(check int) "nodes" 3 p.Params.nodes;
  Alcotest.(check bool) "zero rejected" true
    (try
       ignore (Params.with_nodes Params.default 0);
       false
     with Invalid_argument _ -> true)

let test_params_fixed_resource () =
  let p =
    Params.fixed_resource Params.default ~total_cores:16
      ~total_mem:(Drust_util.Units.gib 64) ~nodes:8
  in
  Alcotest.(check int) "2 cores each" 2 p.Params.cores_per_node;
  Alcotest.(check int) "8 GiB each" (Drust_util.Units.gib 8) p.Params.mem_per_node;
  Alcotest.(check bool) "uneven split rejected" true
    (try
       ignore
         (Params.fixed_resource Params.default ~total_cores:16 ~total_mem:0
            ~nodes:3);
       false
     with Invalid_argument _ -> true)

let test_params_cycle_conversion () =
  let p = Params.default in
  let s = Params.cycles_to_seconds p 2.6e9 in
  Alcotest.(check (float 1e-12)) "2.6G cycles = 1 s" 1.0 s;
  Alcotest.(check (float 1e-3)) "inverse" 2.6e9 (Params.seconds_to_cycles p 1.0)

(* ------------------------------------------------------------------ *)
(* Cluster *)

let test_cluster_structure () =
  let c = Cluster.create (small 4) in
  Alcotest.(check int) "node count" 4 (Cluster.node_count c);
  Alcotest.(check (list int)) "all alive" [ 0; 1; 2; 3 ] (Cluster.alive_nodes c);
  Alcotest.(check bool) "uids distinct" true
    (Cluster.uid c <> Cluster.uid (Cluster.create (small 2)));
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Cluster.node c 4);
       false
     with Invalid_argument _ -> true)

let test_cluster_heap_roundtrip () =
  let c = Cluster.create (small 4) in
  let g = Cluster.heap_alloc c ~node:2 ~size:64 (pack 5) in
  Alcotest.(check int) "address in node 2's range" 2 (Gaddr.node_of g);
  Alcotest.(check int) "read" 5 (unpack (Cluster.heap_read c g).Partition.value);
  Cluster.heap_write c g (pack 6);
  Alcotest.(check int) "write" 6 (unpack (Cluster.heap_read c g).Partition.value);
  Alcotest.(check bool) "mem" true (Cluster.heap_mem c g);
  Cluster.heap_free c g;
  Alcotest.(check bool) "freed" false (Cluster.heap_mem c g)

let test_cluster_promotion_redirects () =
  let c = Cluster.create (small 4) in
  let g = Cluster.heap_alloc c ~node:1 ~size:32 (pack 1) in
  (* Build a replica store for node 1's range and promote node 3. *)
  let replica = Partition.create ~node:1 ~capacity_bytes:(Drust_util.Units.mib 1) in
  Partition.put replica g ~size:32 (pack 99);
  Cluster.mark_failed c 1;
  Cluster.promote c ~home:1 ~by:3 ~store:replica;
  Alcotest.(check int) "serving map" 3 (Cluster.serving_node c 1);
  Alcotest.(check int) "reads hit the replica" 99
    (unpack (Cluster.heap_read c g).Partition.value);
  (* New allocations in the dead range land in the replica store too. *)
  let g2 = Cluster.heap_alloc c ~node:1 ~size:32 (pack 2) in
  Alcotest.(check int) "address keeps home range" 1 (Gaddr.node_of g2);
  Alcotest.(check bool) "wrong store rejected" true
    (try
       Cluster.promote c ~home:0 ~by:3 ~store:replica;
       false
     with Invalid_argument _ -> true)

let test_cluster_most_vacant () =
  let c = Cluster.create (small 3) in
  ignore (Cluster.heap_alloc c ~node:0 ~size:1000 (pack 0));
  ignore (Cluster.heap_alloc c ~node:1 ~size:500 (pack 0));
  Alcotest.(check int) "node 2 is empty" 2 (Cluster.most_vacant_node c);
  Cluster.mark_failed c 2;
  Alcotest.(check int) "dead nodes skipped" 1 (Cluster.most_vacant_node c)

(* ------------------------------------------------------------------ *)
(* Ctx *)

let in_cluster nodes body =
  let c = Cluster.create (small nodes) in
  ignore (Engine.spawn (Cluster.engine c) (fun () -> body c (Ctx.make c ~node:0)));
  Cluster.run c

let test_ctx_compute_advances_time () =
  in_cluster 2 (fun c ctx ->
      let t0 = Cluster.now c in
      Ctx.compute ctx ~cycles:2.6e6;
      Alcotest.(check (float 1e-9)) "1 ms of compute" 1e-3 (Cluster.now c -. t0))

let test_ctx_charge_batches_below_grain () =
  in_cluster 2 (fun c ctx ->
      let t0 = Cluster.now c in
      (* Far below the flush grain: time must not advance yet. *)
      Ctx.charge_cycles ctx 100.0;
      Alcotest.(check (float 1e-15)) "batched" 0.0 (Cluster.now c -. t0);
      Ctx.flush ctx;
      Alcotest.(check bool) "flushed" true (Cluster.now c -. t0 > 0.0))

let test_ctx_compute_contends_for_cores () =
  (* 2 cores, 4 simultaneous 1ms bursts: makespan 2ms. *)
  let c = Cluster.create (small 2) in
  let done_at = ref [] in
  for _ = 1 to 4 do
    ignore
      (Engine.spawn (Cluster.engine c) (fun () ->
           let ctx = Ctx.make c ~node:0 in
           Ctx.compute ctx ~cycles:2.6e6;
           done_at := Cluster.now c :: !done_at))
  done;
  Cluster.run c;
  Alcotest.(check (float 1e-9)) "last finishes at 2ms" 2e-3
    (List.fold_left Float.max 0.0 !done_at)

let test_ctx_counters_and_hottest () =
  in_cluster 4 (fun _c ctx ->
      Ctx.note_remote_access ctx ~target:2;
      Ctx.note_remote_access ctx ~target:2;
      Ctx.note_remote_access ctx ~target:3;
      Ctx.note_remote_access ctx ~target:0 (* own node: ignored *);
      Alcotest.(check int) "total" 3 (Ctx.remote_access_total ctx);
      Alcotest.(check (option int)) "hottest" (Some 2) (Ctx.hottest_remote_node ctx);
      Ctx.note_local_alloc ctx ~bytes:100;
      Alcotest.(check int) "alloc bytes" 100 ctx.Ctx.local_alloc_bytes;
      Ctx.reset_counters ctx;
      Alcotest.(check int) "reset" 0 (Ctx.remote_access_total ctx);
      Alcotest.(check (option int)) "no hottest" None (Ctx.hottest_remote_node ctx))

let test_ctx_safe_point_hook_runs_on_flush () =
  in_cluster 2 (fun _c ctx ->
      let hits = ref 0 in
      ctx.Ctx.safe_point_hook <- Some (fun _ -> incr hits);
      Ctx.compute ctx ~cycles:1000.0;
      Ctx.compute ctx ~cycles:1000.0;
      Alcotest.(check int) "hook per flush" 2 !hits)

let test_ctx_thread_ids_unique () =
  in_cluster 2 (fun c ctx ->
      let other = Ctx.make c ~node:1 in
      Alcotest.(check bool) "distinct ids" true
        (ctx.Ctx.thread_id <> other.Ctx.thread_id))

let test_thread_ids_per_cluster () =
  (* Ids restart at 0 in every cluster: a run's thread numbering cannot
     depend on how many clusters ran before it in the same process. *)
  let c1 = Cluster.create (small 2) in
  let c2 = Cluster.create (small 2) in
  Alcotest.(check int) "c1 first" 0 (Cluster.fresh_thread_id c1);
  Alcotest.(check int) "c1 second" 1 (Cluster.fresh_thread_id c1);
  Alcotest.(check int) "c2 starts at 0 too" 0 (Cluster.fresh_thread_id c2)

(* ------------------------------------------------------------------ *)
(* Env *)

let test_env_basics () =
  let env = Env.create () in
  let k1 : int Env.key = Env.key ~name:"test.k1" in
  let k2 : string Env.key = Env.key ~name:"test.k2" in
  Alcotest.(check (option int)) "empty" None (Env.find env k1);
  Alcotest.(check int) "init" 7 (Env.get env k1 ~init:(fun () -> 7));
  Alcotest.(check int) "memoized" 7 (Env.get env k1 ~init:(fun () -> 8));
  Env.set env k1 9;
  Alcotest.(check (option int)) "set overwrites" (Some 9) (Env.find env k1);
  Alcotest.(check bool) "mem" true (Env.mem env k1);
  Alcotest.(check bool) "k2 absent" false (Env.mem env k2);
  Env.set env k2 "x";
  Alcotest.(check int) "length" 2 (Env.length env);
  Alcotest.(check (list string)) "names sorted" [ "test.k1"; "test.k2" ]
    (Env.names env);
  Env.remove env k1;
  Alcotest.(check (option int)) "removed" None (Env.find env k1)

let test_env_keys_distinct_despite_same_name () =
  (* Key identity is the allocation, not the display name: two keys of
     the same name (and even the same type) address distinct slots. *)
  let env = Env.create () in
  let ka : int Env.key = Env.key ~name:"test.dup" in
  let kb : int Env.key = Env.key ~name:"test.dup" in
  Env.set env ka 1;
  Alcotest.(check (option int)) "kb unset" None (Env.find env kb);
  Env.set env kb 2;
  Alcotest.(check (option int)) "ka kept" (Some 1) (Env.find env ka)

let test_env_isolated_per_cluster () =
  let k : int Env.key = Env.key ~name:"test.iso" in
  let c1 = Cluster.create (small 2) in
  let c2 = Cluster.create (small 2) in
  Env.set (Cluster.env c1) k 10;
  Alcotest.(check (option int)) "c2 unaffected" None
    (Env.find (Cluster.env c2) k);
  Alcotest.(check int) "c2 own init" 20
    (Env.get (Cluster.env c2) k ~init:(fun () -> 20));
  Alcotest.(check (option int)) "c1 kept" (Some 10)
    (Env.find (Cluster.env c1) k)

(* ------------------------------------------------------------------ *)
(* Leak regression: discarded clusters must be collectable.  Before the
   Env refactor, uid-keyed process-global tables (protocol stats,
   listeners, registries, appkit marks) retained every cluster ever
   created; this test pins the fix.  The workload below touches every
   formerly-global subsystem so each binding demonstrably dies with its
   cluster.  [populate] is a separate function so no stack slot of the
   test frame keeps a cluster alive across the majors. *)

let populate weaks i =
  let c = Cluster.create (small 2) in
  P.set_always_move c false;
  P.set_probe c (Some (fun _ _ -> ()));
  Drust_runtime.Darc.set_listener c (Some (fun _ _ -> ()));
  Drust_runtime.Dmutex.set_listener c (Some (fun _ _ -> ()));
  ignore (Dthread.migration_latency_stats c);
  let r =
    Drust_appkit.Appkit.run_main c (fun ctx ->
        let o = P.create ctx ~size:64 (pack i) in
        let im = P.borrow_imm ctx o in
        ignore (P.imm_deref ctx im);
        P.drop_imm ctx im;
        let h = Dthread.spawn ctx (fun w -> Ctx.compute w ~cycles:500.0) in
        Dthread.join ctx h;
        (1.0, []))
  in
  ignore r.Drust_appkit.Appkit.throughput;
  Weak.set weaks i (Some c)

let test_no_per_cluster_state_leaks () =
  let n = 100 in
  let weaks : Cluster.t Weak.t = Weak.create n in
  for i = 0 to n - 1 do
    populate weaks i
  done;
  Gc.full_major ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check weaks i then incr live
  done;
  Alcotest.(check int) "all 100 clusters collected" 0 !live

let () =
  Alcotest.run "machine"
    [
      ( "params",
        [
          Alcotest.test_case "testbed defaults" `Quick test_params_defaults_match_testbed;
          Alcotest.test_case "with_nodes" `Quick test_params_with_nodes;
          Alcotest.test_case "fixed_resource" `Quick test_params_fixed_resource;
          Alcotest.test_case "cycle conversion" `Quick test_params_cycle_conversion;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "structure" `Quick test_cluster_structure;
          Alcotest.test_case "heap roundtrip" `Quick test_cluster_heap_roundtrip;
          Alcotest.test_case "promotion redirects" `Quick test_cluster_promotion_redirects;
          Alcotest.test_case "most vacant" `Quick test_cluster_most_vacant;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "compute time" `Quick test_ctx_compute_advances_time;
          Alcotest.test_case "charge batches" `Quick test_ctx_charge_batches_below_grain;
          Alcotest.test_case "core contention" `Quick test_ctx_compute_contends_for_cores;
          Alcotest.test_case "counters" `Quick test_ctx_counters_and_hottest;
          Alcotest.test_case "safe-point hook" `Quick test_ctx_safe_point_hook_runs_on_flush;
          Alcotest.test_case "unique ids" `Quick test_ctx_thread_ids_unique;
          Alcotest.test_case "ids per cluster" `Quick test_thread_ids_per_cluster;
        ] );
      ( "env",
        [
          Alcotest.test_case "basics" `Quick test_env_basics;
          Alcotest.test_case "key identity" `Quick test_env_keys_distinct_despite_same_name;
          Alcotest.test_case "per-cluster isolation" `Quick test_env_isolated_per_cluster;
          Alcotest.test_case "no state leaks" `Quick test_no_per_cluster_state_leaks;
        ] );
    ]
