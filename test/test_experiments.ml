(* Integration tests at the experiment-harness level: the headline shapes
   of the paper's evaluation must hold when the harness runs its (scaled)
   experiments.  These are the repository's "does the reproduction still
   reproduce?" guard rails. *)

module E = Drust_experiments
module B = E.Bench_setup
module Appkit = Drust_appkit.Appkit

(* ------------------------------------------------------------------ *)
(* Parallel sweep runner *)

let test_parallel_results_independent_of_jobs () =
  let thunks () = List.init 17 (fun i () -> (i * i) + 1) in
  let seq = E.Parallel.run ~jobs:1 (thunks ()) in
  let par = E.Parallel.run ~jobs:4 (thunks ()) in
  Alcotest.(check (list int)) "same results, same order" seq par

let test_parallel_submission_order () =
  let r = E.Parallel.map ~jobs:4 (fun i -> 10 * i) [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  Alcotest.(check (list int)) "submission order" [ 30; 10; 40; 10; 50; 90; 20; 60 ] r

let test_parallel_error_propagation () =
  (* The earliest-submitted failure is the one re-raised, regardless of
     which domain hits its exception first. *)
  let boom i = Failure (Printf.sprintf "job %d" i) in
  let thunks =
    List.init 8 (fun i () -> if i = 2 || i = 5 then raise (boom i) else i)
  in
  (match E.Parallel.run ~jobs:4 thunks with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg -> Alcotest.(check string) "earliest job" "job 2" msg);
  Alcotest.(check bool) "jobs must be positive" true
    (try
       ignore (E.Parallel.run ~jobs:0 [ (fun () -> ()) ]);
       false
     with Invalid_argument _ -> true)

let test_parallel_cluster_sweep_deterministic () =
  (* Full simulated clusters on separate domains: the sweep's numbers
     must be exactly the sequential ones. *)
  let sweep jobs =
    E.Parallel.map ~jobs
      (fun nodes ->
        let r =
          B.run_app B.Kvstore_app B.Drust ~params:(B.testbed ~nodes ())
        in
        (r.Appkit.ops, r.Appkit.elapsed))
      [ 1; 2; 4 ]
  in
  let seq = sweep 1 in
  let par = sweep 4 in
  List.iter2
    (fun (o1, e1) (o2, e2) ->
      Alcotest.(check (float 0.0)) "ops bit-identical" o1 o2;
      Alcotest.(check (float 0.0)) "elapsed bit-identical" e1 e2)
    seq par

(* ------------------------------------------------------------------ *)
(* Report rate registry and baseline cache *)

let test_rates_ordered_collection () =
  let probe = "test/rates/probe" and probe2 = "test/rates/probe2" in
  E.Report.record_rate ~experiment:probe ~ops:10.0 ~elapsed:2.0 ();
  E.Report.record_rate ~experiment:probe2 ~ops:9.0 ~elapsed:3.0 ();
  (* Re-recording overwrites the value without duplicating the entry. *)
  E.Report.record_rate ~experiment:probe ~ops:20.0 ~elapsed:2.0 ();
  let rates = E.Report.recorded_rates () in
  Alcotest.(check int) "no duplicate" 1
    (List.length (List.filter (fun (k, _) -> String.equal k probe) rates));
  Alcotest.(check (float 1e-9)) "overwritten" 10.0 (List.assoc probe rates);
  Alcotest.(check (float 1e-9)) "second entry kept" 3.0 (List.assoc probe2 rates);
  (* Non-positive elapsed is ignored. *)
  E.Report.record_rate ~experiment:"test/rates/zero" ~ops:1.0 ~elapsed:0.0 ();
  Alcotest.(check bool) "zero elapsed ignored" false
    (List.mem_assoc "test/rates/zero" (E.Report.recorded_rates ()));
  (* The returned registry is name-sorted: order of recording cannot
     change the summary. *)
  let names = List.map fst rates in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names

let test_baseline_cache_keyed_on_config () =
  (* Two different parameter sets must not share a memo entry — the
     regression was a cache keyed on the app alone. *)
  let p1 = B.testbed ~nodes:1 () in
  let p2 = B.testbed ~nodes:2 () in
  let r1 = B.single_node_baseline ~params:p1 B.Kvstore_app in
  let r2 = B.single_node_baseline ~params:p2 B.Kvstore_app in
  let r1' = B.single_node_baseline ~params:p1 B.Kvstore_app in
  Alcotest.(check (float 0.0)) "memo hit is identical" r1.Appkit.ops r1'.Appkit.ops;
  Alcotest.(check bool) "different params, different entries" true
    (r1.Appkit.elapsed <> r2.Appkit.elapsed
    || r1.Appkit.throughput <> r2.Appkit.throughput)

(* ------------------------------------------------------------------ *)
(* Bench summary: v2 roundtrip, v1 compatibility, regression detection *)

let with_temp_file f =
  let path = Filename.temp_file "bench_summary" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* A latency histogram over the protocol op buckets with a known shape. *)
let sample_latency () =
  let m = Drust_obs.Metrics.create () in
  let h =
    Drust_obs.Metrics.histogram m
      ~buckets:Drust_core.Protocol.op_latency_buckets ~unit_:"s" "test.lat"
  in
  List.iter (Drust_obs.Metrics.observe h) [ 1e-6; 2e-6; 5e-6; 1e-5; 1e-4 ];
  match Drust_obs.Metrics.find (Drust_obs.Metrics.snapshot m) "test.lat" with
  | Some (Drust_obs.Metrics.Histo hs) -> hs
  | _ -> Alcotest.fail "sample histogram missing"

let test_summary_v2_roundtrip () =
  let latency = sample_latency () in
  E.Report.record_rate ~latency ~experiment:"test/summary/v2" ~ops:1000.0
    ~elapsed:2.0 ();
  with_temp_file (fun path ->
      E.Report.write_bench_summary ~path;
      let s = E.Report.read_bench_summary ~path in
      Alcotest.(check string) "schema" E.Report.schema_version
        s.E.Report.sm_schema;
      let entry = List.assoc "test/summary/v2" s.E.Report.sm_entries in
      Alcotest.(check (float 1e-6)) "rate" 500.0 entry.E.Report.se_rate;
      (* Every percentile point survives the roundtrip, monotonically. *)
      let pct name = List.assoc name entry.E.Report.se_latency_us in
      List.iter
        (fun (name, q) ->
          let written =
            1e6 *. Option.get (Drust_obs.Metrics.quantile latency q)
          in
          Alcotest.(check (float 1e-3))
            (Printf.sprintf "%s roundtrips" name)
            written (pct name))
        E.Report.percentile_points;
      Alcotest.(check bool) "p50 <= p99" true (pct "p50" <= pct "p99");
      (* And the file diffed against itself is regression-free. *)
      Alcotest.(check (list string)) "self-diff clean" []
        (E.Report.compare_summaries ~baseline:s s))

let test_summary_v3_host_roundtrip () =
  (* host_ms survives a write/read roundtrip, but only when host-time
     recording is on — a plain run must stay machine-independent. *)
  E.Report.record_rate ~host_ms:123.5 ~experiment:"test/summary/host-off"
    ~ops:10.0 ~elapsed:1.0 ();
  E.Report.set_host_time_recording true;
  Fun.protect
    ~finally:(fun () -> E.Report.set_host_time_recording false)
    (fun () ->
      E.Report.record_rate ~host_ms:123.5 ~experiment:"test/summary/host-on"
        ~ops:10.0 ~elapsed:1.0 ());
  with_temp_file (fun path ->
      E.Report.write_bench_summary ~path;
      let s = E.Report.read_bench_summary ~path in
      Alcotest.(check string) "v3 schema" "drust-bench-summary/v3"
        s.E.Report.sm_schema;
      let e name = List.assoc name s.E.Report.sm_entries in
      Alcotest.(check (option (float 1e-9))) "host_ms roundtrips"
        (Some 123.5)
        (e "test/summary/host-on").E.Report.se_host_ms;
      Alcotest.(check (option (float 1e-9))) "host_ms dropped when off" None
        (e "test/summary/host-off").E.Report.se_host_ms;
      Alcotest.(check (list string)) "self-diff clean" []
        (E.Report.compare_summaries ~baseline:s s))

let test_summary_v2_readable () =
  (* The previous schema (rates + percentiles, no host_ms) still parses. *)
  with_temp_file (fun path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            {|{ "schema": "drust-bench-summary/v2",
                "entries": { "fig5/gemm": { "ops_per_sim_sec": 99.0,
                  "latency_us": { "p50": 1.5, "p99": 7.0 } } } }|});
      let s = E.Report.read_bench_summary ~path in
      Alcotest.(check string) "v2 schema kept" "drust-bench-summary/v2"
        s.E.Report.sm_schema;
      let entry = List.assoc "fig5/gemm" s.E.Report.sm_entries in
      Alcotest.(check (float 1e-9)) "rate" 99.0 entry.E.Report.se_rate;
      Alcotest.(check (float 1e-9)) "p99" 7.0
        (List.assoc "p99" entry.E.Report.se_latency_us);
      Alcotest.(check (option (float 1e-9))) "no host_ms in v2" None
        entry.E.Report.se_host_ms;
      Alcotest.(check (list string)) "v2 self-diff clean" []
        (E.Report.compare_summaries ~baseline:s s))

let test_summary_v1_readable () =
  with_temp_file (fun path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            {|{ "schema": "drust-bench-summary/v1",
                "entries": { "fig5/gemm": { "ops_per_sim_sec": 123.5 } } }|});
      let s = E.Report.read_bench_summary ~path in
      Alcotest.(check string) "v1 schema kept" "drust-bench-summary/v1"
        s.E.Report.sm_schema;
      let entry = List.assoc "fig5/gemm" s.E.Report.sm_entries in
      Alcotest.(check (float 1e-9)) "rate" 123.5 entry.E.Report.se_rate;
      Alcotest.(check int) "no latency in v1" 0
        (List.length entry.E.Report.se_latency_us);
      Alcotest.(check (list string)) "v1 self-diff clean" []
        (E.Report.compare_summaries ~baseline:s s));
  (* Unknown schemas and malformed JSON are loud failures. *)
  with_temp_file (fun path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc {|{ "schema": "who-knows/v9", "entries": {} }|});
      Alcotest.(check bool) "unknown schema rejected" true
        (try
           ignore (E.Report.read_bench_summary ~path);
           false
         with Failure _ -> true));
  with_temp_file (fun path ->
      Out_channel.with_open_text path (fun oc -> output_string oc "{ nope");
      Alcotest.(check bool) "malformed json rejected" true
        (try
           ignore (E.Report.read_bench_summary ~path);
           false
         with Failure _ -> true))

let test_summary_regression_detection () =
  let entry ?host_ms ?host_rate rate p99 =
    {
      E.Report.se_rate = rate;
      se_latency_us = [ ("p50", 1.0); ("p99", p99) ];
      se_host_ms = host_ms;
      se_host_rate = host_rate;
    }
  in
  let summary entries =
    { E.Report.sm_schema = E.Report.schema_version; sm_entries = entries }
  in
  let baseline = summary [ ("a", entry 100.0 10.0); ("b", entry 50.0 5.0) ] in
  (* Within tolerance: an 8% throughput dip and an 8% latency rise pass
     at the default 10%. *)
  let ok = summary [ ("a", entry 92.0 10.8); ("b", entry 50.0 5.0) ] in
  Alcotest.(check (list string)) "within tolerance" []
    (E.Report.compare_summaries ~baseline ok);
  (* A >= 10% throughput drop is flagged... *)
  let slow = summary [ ("a", entry 89.0 10.0); ("b", entry 50.0 5.0) ] in
  Alcotest.(check int) "throughput regression" 1
    (List.length (E.Report.compare_summaries ~baseline slow));
  (* ...so is a >= 10% latency-percentile rise... *)
  let lat = summary [ ("a", entry 100.0 11.5); ("b", entry 50.0 5.0) ] in
  Alcotest.(check int) "latency regression" 1
    (List.length (E.Report.compare_summaries ~baseline lat));
  (* ...and a vanished baseline entry.  New entries never fail. *)
  let missing = summary [ ("a", entry 100.0 10.0); ("c", entry 9.0 1.0) ] in
  Alcotest.(check int) "missing entry" 1
    (List.length (E.Report.compare_summaries ~baseline missing));
  (* A looser tolerance clears the marginal cases. *)
  Alcotest.(check (list string)) "tolerance widens the gate" []
    (E.Report.compare_summaries ~tolerance:0.2 ~baseline slow
    @ E.Report.compare_summaries ~tolerance:0.2 ~baseline lat);
  (* Host time gates only on a blowup past the loose default (200%):
     2.9x passes, 3.1x fails, and an entry without host_ms on either
     side is never compared. *)
  let hb = summary [ ("a", entry ~host_ms:100.0 100.0 10.0) ] in
  let h_noisy = summary [ ("a", entry ~host_ms:290.0 100.0 10.0) ] in
  Alcotest.(check (list string)) "host noise tolerated" []
    (E.Report.compare_summaries ~baseline:hb h_noisy);
  let h_blown = summary [ ("a", entry ~host_ms:310.0 100.0 10.0) ] in
  Alcotest.(check int) "host blowup flagged" 1
    (List.length (E.Report.compare_summaries ~baseline:hb h_blown));
  Alcotest.(check (list string)) "--tolerance-host widens the host gate" []
    (E.Report.compare_summaries ~tolerance_host:4.0 ~baseline:hb h_blown);
  let h_absent = summary [ ("a", entry 100.0 10.0) ] in
  Alcotest.(check (list string)) "absent host_ms never compared" []
    (E.Report.compare_summaries ~baseline:hb h_absent
    @ E.Report.compare_summaries ~baseline:h_absent h_blown);
  (* Host engine throughput gates in the lower-is-worse direction with
     the same loose tolerance: a 2.9x slowdown passes, 3.1x fails. *)
  let rb = summary [ ("a", entry ~host_rate:3.0e6 100.0 10.0) ] in
  let r_noisy = summary [ ("a", entry ~host_rate:1.05e6 100.0 10.0) ] in
  Alcotest.(check (list string)) "host rate noise tolerated" []
    (E.Report.compare_summaries ~baseline:rb r_noisy);
  let r_blown = summary [ ("a", entry ~host_rate:0.95e6 100.0 10.0) ] in
  Alcotest.(check int) "host rate collapse flagged" 1
    (List.length (E.Report.compare_summaries ~baseline:rb r_blown));
  Alcotest.(check (list string)) "tolerance-host widens the rate gate" []
    (E.Report.compare_summaries ~tolerance_host:4.0 ~baseline:rb r_blown)

let test_failover_percentiles_shape () =
  let mk seed detection recovery =
    {
      E.Failover.seed;
      victim = 1;
      crash_time = 1.0;
      detection_time = Option.map (fun d -> 1.0 +. d) detection;
      recovery_time = Option.map (fun r -> 1.0 +. r) recovery;
      curve = [||];
      bucket = 0.1;
      total_ops = 0;
      failed_ops = 0;
      retries = 0;
      timeouts = 0;
      drops = 0;
      op_latency = None;
    }
  in
  let results =
    [
      mk 1 (Some 0.002) (Some 0.004);
      mk 2 (Some 0.003) (Some 0.006);
      mk 3 (Some 0.012) (Some 0.030);
      mk 4 None None;
      (* never detected: excluded from the samples *)
    ]
  in
  let pct = E.Failover.failover_percentiles results in
  let phase name = List.find (fun (p, _, _, _) -> String.equal p name) pct in
  let _, n_det, p50_det, p99_det = phase "detection" in
  let _, n_rec, p50_rec, p99_rec = phase "recovery" in
  Alcotest.(check int) "3 detection samples" 3 n_det;
  Alcotest.(check int) "3 recovery samples" 3 n_rec;
  Alcotest.(check bool) "detection p99 >= p50" true (p99_det >= p50_det);
  Alcotest.(check bool) "recovery p99 >= p50" true (p99_rec >= p50_rec);
  Alcotest.(check bool) "recovery slower than detection" true
    (p50_rec >= p50_det);
  (* The p99 lands in the bucket of the 12ms / 30ms outliers. *)
  Alcotest.(check bool) "detection tail visible" true (p99_det > 0.005);
  Alcotest.(check bool) "recovery tail visible" true (p99_rec > 0.01)

(* ------------------------------------------------------------------ *)
(* Motivation (S3) *)

let test_motivation_breakdown () =
  let r = E.Motivation.run () in
  Alcotest.(check bool)
    (Printf.sprintf "GAM read %.1fus in [13,19]" (r.E.Motivation.gam_total *. 1e6))
    true
    (r.E.Motivation.gam_total > 13e-6 && r.E.Motivation.gam_total < 19e-6);
  Alcotest.(check bool) "coherence fraction ~77%" true
    (r.E.Motivation.coherence_fraction > 0.70
    && r.E.Motivation.coherence_fraction < 0.82);
  Alcotest.(check bool) "DRust read near wire time" true
    (r.E.Motivation.drust_total < 1.5 *. r.E.Motivation.wire_time)

(* ------------------------------------------------------------------ *)
(* Table 2 *)

let test_table2_shape () =
  let rows = E.Table2.run ~samples:50_000 ~seed:11 () in
  let find l = List.find (fun r -> String.equal r.E.Table2.label l) rows in
  let drust = find "DRust" and rust = find "Rust" in
  (* DRust adds a small constant overhead over plain Rust. *)
  let delta = drust.E.Table2.average -. rust.E.Table2.average in
  Alcotest.(check bool)
    (Printf.sprintf "check overhead %.0f cycles in [25, 40]" delta)
    true
    (delta > 25.0 && delta < 40.0);
  (* Within 10% of the paper's Rust row. *)
  Alcotest.(check bool) "avg near 364" true
    (Float.abs (rust.E.Table2.average -. 364.0) < 36.0);
  Alcotest.(check bool) "median near 332" true
    (Float.abs (rust.E.Table2.median -. 332.0) < 33.0);
  Alcotest.(check bool) "p90 near 496" true
    (Float.abs (rust.E.Table2.p90 -. 496.0) < 50.0)

(* ------------------------------------------------------------------ *)
(* Fig 5 headline shapes (scaled-down runs: just 1 and 8 nodes) *)

let speedup app system nodes =
  let base = B.single_node_baseline app in
  let r = B.run_app app system ~params:(B.testbed ~nodes ()) in
  r.Appkit.throughput /. base.Appkit.throughput

let test_fig5_kv_ordering () =
  let drust = speedup B.Kvstore_app B.Drust 8 in
  let gam = speedup B.Kvstore_app B.Gam 8 in
  let grappa = speedup B.Kvstore_app B.Grappa 8 in
  Alcotest.(check bool)
    (Printf.sprintf "DRust %.2f > GAM %.2f > Grappa %.2f" drust gam grappa)
    true
    (drust > gam && gam > grappa);
  Alcotest.(check bool) "DRust gains from scale" true (drust > 2.0);
  Alcotest.(check bool) "Grappa stays near/below original" true (grappa < 1.3)

let test_fig5_gemm_ordering () =
  let drust = speedup B.Gemm_app B.Drust 8 in
  let grappa = speedup B.Gemm_app B.Grappa 8 in
  Alcotest.(check bool) "DRust scales well" true (drust > 5.0);
  Alcotest.(check bool) "Grappa can't cache" true (drust > 2.0 *. grappa)

let test_fig5_dataframe_ordering () =
  let drust = speedup B.Dataframe_app B.Drust 8 in
  let gam = speedup B.Dataframe_app B.Gam 8 in
  let grappa = speedup B.Dataframe_app B.Grappa 8 in
  Alcotest.(check bool)
    (Printf.sprintf "DRust %.2f > GAM %.2f > Grappa %.2f" drust gam grappa)
    true
    (drust > gam && gam > grappa)

let test_fig5_single_node_overhead () =
  (* DRust on one node stays within a few percent of the original. *)
  List.iter
    (fun app ->
      let s = speedup app B.Drust 1 in
      Alcotest.(check bool)
        (Printf.sprintf "%s 1-node %.3f >= 0.95" (B.app_name app) s)
        true (s >= 0.95))
    [ B.Dataframe_app; B.Gemm_app; B.Kvstore_app ]

(* ------------------------------------------------------------------ *)
(* Fig 6 / Fig 7 *)

let test_fig6_monotone () =
  let rows = E.Fig6.run () in
  match rows with
  | [ plain; tbox; both ] ->
      Alcotest.(check bool) "tbox ~ plain (no regression)" true
        (tbox.E.Fig6.vs_plain >= 0.97);
      Alcotest.(check bool) "both > plain" true (both.E.Fig6.vs_plain > 1.02);
      Alcotest.(check bool) "plain is the reference" true
        (Float.abs (plain.E.Fig6.vs_plain -. 1.0) < 1e-6)
  | _ -> Alcotest.fail "expected three variants"

let test_fig7_drust_cheapest () =
  let rows = E.Fig7.run () in
  List.iter
    (fun app ->
      let overhead system =
        let r =
          List.find
            (fun x -> x.E.Fig7.app = app && x.E.Fig7.system = system)
            rows
        in
        r.E.Fig7.overhead
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: DRust %.2f < GAM %.2f and < Grappa %.2f"
           (B.app_name app) (overhead B.Drust) (overhead B.Gam)
           (overhead B.Grappa))
        true
        (overhead B.Drust < overhead B.Gam
        && overhead B.Drust < overhead B.Grappa))
    [ B.Dataframe_app; B.Gemm_app; B.Kvstore_app ]

(* ------------------------------------------------------------------ *)
(* YCSB extension: DRust's lead tracks the read share (the S6 limitation
   made quantitative) *)

let test_ycsb_suite_shape () =
  let rows = E.Ycsb_suite.run () in
  let drust w =
    (List.find
       (fun r -> r.E.Ycsb_suite.workload = w && r.E.Ycsb_suite.system = B.Drust)
       rows)
      .E.Ycsb_suite.speedup
  in
  let module Y = Drust_workloads.Ycsb in
  Alcotest.(check bool) "read-only best" true
    (drust Y.C >= drust Y.B && drust Y.B > drust Y.A);
  Alcotest.(check bool) "RMW degenerates" true (drust Y.F < 1.5);
  Alcotest.(check bool) "read-mostly scales" true (drust Y.B > 3.0)

(* ------------------------------------------------------------------ *)
(* Migration drill-down *)

let test_migration_drilldown () =
  let r = E.Migration.run () in
  Alcotest.(check int) "15 threads" 15 r.E.Migration.migrations;
  Alcotest.(check bool)
    (Printf.sprintf "avg %.0fus within 2x of 218us"
       (r.E.Migration.average_latency *. 1e6))
    true
    (r.E.Migration.average_latency > 109e-6
    && r.E.Migration.average_latency < 436e-6);
  Alcotest.(check bool) "controller rebalanced the overload" true
    (r.E.Migration.controller_migrations > 0)

(* ------------------------------------------------------------------ *)
(* Ablations *)

let test_ablation_directions () =
  let rows = E.Ablation.run () in
  let value variant =
    (List.find (fun r -> String.equal r.E.Ablation.variant variant) rows)
      .E.Ablation.value
  in
  Alcotest.(check bool) "coloring beats always-move" true
    (value "pointer coloring (default)" < value "always-move (ablated)");
  Alcotest.(check bool) "TBox batch beats pointer chase" true
    (value "TBox (batched)" < value "plain Box (chase)" /. 5.0);
  Alcotest.(check bool) "1-sided lock beats 2-sided" true
    (value "DRust 1-sided CAS" < value "GAM-style 2-sided RPC")

let () =
  Alcotest.run "experiments"
    [
      ( "parallel",
        [
          Alcotest.test_case "jobs 1 == jobs 4" `Quick
            test_parallel_results_independent_of_jobs;
          Alcotest.test_case "submission order" `Quick
            test_parallel_submission_order;
          Alcotest.test_case "first error wins" `Quick
            test_parallel_error_propagation;
          Alcotest.test_case "cluster sweep" `Quick
            test_parallel_cluster_sweep_deterministic;
        ] );
      ( "report",
        [
          Alcotest.test_case "rates ordered and overwrite" `Quick
            test_rates_ordered_collection;
          Alcotest.test_case "baseline keyed on config" `Quick
            test_baseline_cache_keyed_on_config;
        ] );
      ( "bench-summary",
        [
          Alcotest.test_case "v2 roundtrip" `Quick test_summary_v2_roundtrip;
          Alcotest.test_case "v3 host_ms roundtrip" `Quick
            test_summary_v3_host_roundtrip;
          Alcotest.test_case "v2 readable" `Quick test_summary_v2_readable;
          Alcotest.test_case "v1 readable" `Quick test_summary_v1_readable;
          Alcotest.test_case "regression detection" `Quick
            test_summary_regression_detection;
          Alcotest.test_case "failover percentiles" `Quick
            test_failover_percentiles_shape;
        ] );
      ( "motivation",
        [ Alcotest.test_case "S3 breakdown" `Quick test_motivation_breakdown ] );
      ("table2", [ Alcotest.test_case "deref shape" `Quick test_table2_shape ]);
      ( "fig5",
        [
          Alcotest.test_case "kv ordering" `Slow test_fig5_kv_ordering;
          Alcotest.test_case "gemm ordering" `Slow test_fig5_gemm_ordering;
          Alcotest.test_case "dataframe ordering" `Slow test_fig5_dataframe_ordering;
          Alcotest.test_case "single-node overhead" `Slow test_fig5_single_node_overhead;
        ] );
      ( "fig6-fig7",
        [
          Alcotest.test_case "fig6 monotone" `Slow test_fig6_monotone;
          Alcotest.test_case "fig7 drust cheapest" `Slow test_fig7_drust_cheapest;
        ] );
      ( "drilldowns",
        [
          Alcotest.test_case "migration" `Quick test_migration_drilldown;
          Alcotest.test_case "ablations" `Quick test_ablation_directions;
          Alcotest.test_case "ycsb suite shape" `Slow test_ycsb_suite_shape;
        ] );
    ]
