(* Tests for the dynamic ownership discipline — the OCaml stand-in for the
   Rust borrow checker.  Includes a property test that random op sequences
   never corrupt the automaton. *)

module B = Drust_ownership.Borrow_state
module Own = Drust_ownership.Own

let violates kind f =
  try
    f ();
    false
  with B.Violation v -> v.kind = kind

(* ------------------------------------------------------------------ *)
(* Borrow_state automaton *)

let test_initial_owned () =
  let s = B.create () in
  Alcotest.(check bool) "owned" true (B.state s = B.Owned)

let test_shared_counting () =
  let s = B.create () in
  B.borrow_imm s ~context:"t";
  B.borrow_imm s ~context:"t";
  Alcotest.(check int) "two readers" 2 (B.imm_count s);
  B.return_imm s ~context:"t";
  Alcotest.(check int) "one reader" 1 (B.imm_count s);
  B.return_imm s ~context:"t";
  Alcotest.(check bool) "owned again" true (B.state s = B.Owned)

let test_single_writer () =
  let s = B.create () in
  B.borrow_mut s ~context:"t";
  Alcotest.(check bool) "mut" true (B.is_mut_borrowed s);
  Alcotest.(check bool) "second mut rejected" true
    (violates B.Mut_while_borrowed (fun () -> B.borrow_mut s ~context:"t"));
  Alcotest.(check bool) "imm during mut rejected" true
    (violates B.Imm_while_mut_borrowed (fun () -> B.borrow_imm s ~context:"t"))

let test_mut_while_shared_rejected () =
  let s = B.create () in
  B.borrow_imm s ~context:"t";
  Alcotest.(check bool) "mut while shared" true
    (violates B.Mut_while_borrowed (fun () -> B.borrow_mut s ~context:"t"))

let test_transfer_requires_owned () =
  let s = B.create () in
  B.borrow_imm s ~context:"t";
  Alcotest.(check bool) "transfer while borrowed" true
    (violates B.Transfer_while_borrowed (fun () -> B.transfer s ~context:"t"));
  B.return_imm s ~context:"t";
  B.transfer s ~context:"t" (* fine now *)

let test_kill_requires_owned () =
  let s = B.create () in
  B.borrow_mut s ~context:"t";
  Alcotest.(check bool) "drop while borrowed" true
    (violates B.Drop_while_borrowed (fun () -> B.kill s ~context:"t"));
  B.return_mut s ~context:"t";
  B.kill s ~context:"t";
  Alcotest.(check bool) "dead" true (B.is_dead s);
  Alcotest.(check bool) "use after death" true
    (violates B.Use_after_death (fun () -> B.borrow_imm s ~context:"t"))

let test_unbalanced_returns () =
  let s = B.create () in
  Alcotest.(check bool) "return_imm on owned" true
    (violates B.Return_without_borrow (fun () -> B.return_imm s ~context:"t"));
  Alcotest.(check bool) "return_mut on owned" true
    (violates B.Return_without_borrow (fun () -> B.return_mut s ~context:"t"))

let test_owner_read_during_share () =
  let s = B.create () in
  B.borrow_imm s ~context:"t";
  B.assert_owner_readable s ~context:"t";
  Alcotest.(check bool) "owner write during share rejected" true
    (violates B.Mut_while_borrowed (fun () -> B.assert_owner_usable s ~context:"t"))

(* Property: random legal-or-illegal op sequences keep the automaton
   consistent — imm_count is always the number of outstanding imm borrows,
   and a violation never mutates state. *)
let prop_automaton_consistent =
  let op_gen = QCheck.Gen.int_range 0 4 in
  QCheck.Test.make ~name:"borrow automaton stays consistent" ~count:500
    QCheck.(make ~print:(fun l -> String.concat "," (List.map string_of_int l))
              (QCheck.Gen.list_size (QCheck.Gen.int_range 1 60) op_gen))
    (fun ops ->
      let s = B.create () in
      let imms = ref 0 and muts = ref 0 and dead = ref false in
      let apply op =
        let before = B.state s in
        match op with
        | 0 -> ( try B.borrow_imm s ~context:"p"; incr imms with B.Violation _ ->
                   if B.state s <> before then failwith "state mutated on violation")
        | 1 ->
            if !imms > 0 then begin
              B.return_imm s ~context:"p";
              decr imms
            end
        | 2 -> (
            try
              B.borrow_mut s ~context:"p";
              incr muts
            with B.Violation _ -> ())
        | 3 ->
            if !muts > 0 then begin
              B.return_mut s ~context:"p";
              decr muts
            end
        | _ -> (
            try
              B.kill s ~context:"p";
              dead := true
            with B.Violation _ -> ())
      in
      List.iter apply ops;
      (if !dead then B.is_dead s
       else
         match B.state s with
         | B.Owned -> !imms = 0 && !muts = 0
         | B.Shared n -> n = !imms && !muts = 0
         | B.Mut_borrowed -> !muts = 1 && !imms = 0
         | B.Dead -> false))

(* Cross-check promised in own.mli: drive the typed [Own] API and a bare
   [Borrow_state] automaton with the same seeded random op sequence and
   assert they accept/reject identically and agree on the resulting
   state at every step. *)
let test_own_matches_automaton () =
  let outcome f = try Ok (f ()) with B.Violation v -> Error v.kind in
  let kind_str = function
    | Ok () -> "ok"
    | Error k -> Format.asprintf "%a" B.pp_violation_kind k
  in
  let run_seed seed =
    let rng = Drust_util.Rng.create ~seed in
    let o = ref (Own.own 0) in
    let s = B.create () in
    let imms = ref [] and muts = ref [] in
    for step = 1 to 400 do
      let op = Drust_util.Rng.int rng 8 in
      let own_out, auto_out =
        match op with
        | 0 ->
            ( outcome (fun () -> imms := Own.borrow !o :: !imms),
              outcome (fun () -> B.borrow_imm s ~context:"x") )
        | 1 -> (
            match !imms with
            | [] -> (Ok (), Ok ())
            | r :: tl ->
                ( outcome (fun () ->
                      Own.drop_ref r;
                      imms := tl),
                  outcome (fun () -> B.return_imm s ~context:"x") ))
        | 2 ->
            ( outcome (fun () -> muts := Own.borrow_mut !o :: !muts),
              outcome (fun () -> B.borrow_mut s ~context:"x") )
        | 3 -> (
            match !muts with
            | [] -> (Ok (), Ok ())
            | m :: tl ->
                ( outcome (fun () ->
                      Own.drop_mut m;
                      muts := tl),
                  outcome (fun () -> B.return_mut s ~context:"x") ))
        | 4 ->
            ( outcome (fun () -> ignore (Own.owner_read !o)),
              outcome (fun () -> B.assert_owner_readable s ~context:"x") )
        | 5 ->
            ( outcome (fun () -> Own.owner_write !o step),
              outcome (fun () -> B.assert_owner_usable s ~context:"x") )
        | 6 ->
            ( outcome (fun () -> o := Own.transfer !o),
              outcome (fun () -> B.transfer s ~context:"x") )
        | _ ->
            ( outcome (fun () -> Own.drop_owner !o),
              outcome (fun () -> B.kill s ~context:"x") )
      in
      Alcotest.(check string)
        (Printf.sprintf "seed %d step %d (op %d) outcome" seed step op)
        (kind_str auto_out) (kind_str own_out);
      Alcotest.(check string)
        (Printf.sprintf "seed %d step %d (op %d) state" seed step op)
        (Format.asprintf "%a" B.pp_state (B.state s))
        (Format.asprintf "%a" B.pp_state (Own.state !o))
    done
  in
  List.iter run_seed [ 1; 2; 3; 42; 1337 ]

(* ------------------------------------------------------------------ *)
(* Own: the typed single-machine API (the paper's Listing 1) *)

let test_own_accumulator_listing1 () =
  (* Mirrors Listing 1: an accumulator, one mutable borrow, then two
     immutable borrows feeding two adds. *)
  let b = Own.own 0 in
  let mutr = Own.borrow_mut b in
  Own.write mutr 10;
  Own.drop_mut mutr;
  let acc = Own.own 5 in
  let r1 = Own.borrow b and r2 = Own.borrow b in
  Own.owner_write acc (Own.owner_read acc + Own.read r1);
  (* owner_write during an outstanding immutable borrow of b is fine —
     acc and b are different objects. *)
  Own.owner_write acc (Own.owner_read acc + Own.read r2);
  Own.drop_ref r1;
  Own.drop_ref r2;
  Alcotest.(check int) "5+10+10" 25 (Own.owner_read acc)

let test_own_borrow_conflicts () =
  let o = Own.own "v" in
  let m = Own.borrow_mut o in
  Alcotest.(check bool) "no imm during mut" true
    (violates B.Imm_while_mut_borrowed (fun () -> ignore (Own.borrow o)));
  Own.drop_mut m;
  let r = Own.borrow o in
  Alcotest.(check bool) "no mut during imm" true
    (violates B.Mut_while_borrowed (fun () -> ignore (Own.borrow_mut o)));
  Own.drop_ref r

let test_own_transfer_invalidates () =
  let o = Own.own 1 in
  let o' = Own.transfer o in
  Alcotest.(check int) "new owner reads" 1 (Own.owner_read o');
  Alcotest.(check bool) "old owner dead" true
    (violates B.Use_after_death (fun () -> ignore (Own.owner_read o)))

let test_own_drop_then_use () =
  let o = Own.own 1 in
  Own.drop_owner o;
  Alcotest.(check bool) "use after drop" true
    (violates B.Use_after_death (fun () -> ignore (Own.owner_read o)))

let test_own_ref_use_after_drop () =
  let o = Own.own 3 in
  let r = Own.borrow o in
  Own.drop_ref r;
  Alcotest.(check bool) "ref dead" true
    (violates B.Use_after_death (fun () -> ignore (Own.read r)))

let test_own_scoped_helpers () =
  let o = Own.own 10 in
  let doubled = Own.with_borrow o (fun v -> v * 2) in
  Alcotest.(check int) "scoped read" 20 doubled;
  Own.with_borrow_mut o (fun v -> (v + 1, ()));
  Alcotest.(check int) "scoped write" 11 (Own.owner_read o);
  Alcotest.(check bool) "owned after scopes" true (Own.state o = B.Owned)

let test_own_scoped_releases_on_exception () =
  let o = Own.own 1 in
  (try Own.with_borrow o (fun _ -> failwith "inner") with Failure _ -> ());
  Alcotest.(check bool) "released" true (Own.state o = B.Owned);
  (try Own.with_borrow_mut o (fun _ -> failwith "inner") with Failure _ -> ());
  Alcotest.(check bool) "released after mut" true (Own.state o = B.Owned)

let () =
  Alcotest.run "ownership"
    [
      ( "borrow_state",
        [
          Alcotest.test_case "initial owned" `Quick test_initial_owned;
          Alcotest.test_case "shared counting" `Quick test_shared_counting;
          Alcotest.test_case "single writer" `Quick test_single_writer;
          Alcotest.test_case "mut while shared" `Quick test_mut_while_shared_rejected;
          Alcotest.test_case "transfer rules" `Quick test_transfer_requires_owned;
          Alcotest.test_case "kill rules" `Quick test_kill_requires_owned;
          Alcotest.test_case "unbalanced returns" `Quick test_unbalanced_returns;
          Alcotest.test_case "owner access during share" `Quick test_owner_read_during_share;
          QCheck_alcotest.to_alcotest prop_automaton_consistent;
        ] );
      ( "own",
        [
          Alcotest.test_case "accumulator (Listing 1)" `Quick test_own_accumulator_listing1;
          Alcotest.test_case "borrow conflicts" `Quick test_own_borrow_conflicts;
          Alcotest.test_case "transfer invalidates" `Quick test_own_transfer_invalidates;
          Alcotest.test_case "drop then use" `Quick test_own_drop_then_use;
          Alcotest.test_case "ref use after drop" `Quick test_own_ref_use_after_drop;
          Alcotest.test_case "scoped helpers" `Quick test_own_scoped_helpers;
          Alcotest.test_case "scoped releases on exception" `Quick
            test_own_scoped_releases_on_exception;
          Alcotest.test_case "seeded cross-check vs Borrow_state" `Quick
            test_own_matches_automaton;
        ] );
    ]
