(* Tests for the DSan shadow-state sanitizer (lib/check).

   Three layers:
   - injection: feed deliberately corrupted event streams into the
     observe_* entry points and assert every invariant class is caught
     with an attributed report;
   - clean runs: real protocol / runtime / chaos-failover workloads under
     the sanitizer must produce zero violations (including the two
     regressions the sanitizer originally surfaced: the pinned
     write-through epoch bump and the failover cache purge);
   - determinism: a sanitized fig5/fig6 run is bit-identical on stdout to
     an unsanitized one — the sanitizer is purely observational. *)

module Engine = Drust_sim.Engine
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module P = Drust_core.Protocol
module Gaddr = Drust_memory.Gaddr
module Cache = Drust_memory.Cache
module Univ = Drust_util.Univ
module Darc = Drust_runtime.Darc
module Drc = Drust_runtime.Drc
module Dmutex = Drust_runtime.Dmutex
module Replication = Drust_runtime.Replication
module Membership = Drust_runtime.Membership
module Dsan = Drust_check.Dsan

let int_tag : int Univ.tag = Univ.create_tag ~name:"int"
let pack = Univ.pack int_tag
let unpack v = Univ.unpack_exn int_tag v

let small_params nodes =
  {
    Params.default with
    Params.nodes;
    cores_per_node = 4;
    mem_per_node = Drust_util.Units.mib 64;
  }

let in_cluster ?(nodes = 4) body =
  let cluster = Cluster.create (small_params nodes) in
  let result = ref None in
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         result := Some (body cluster)));
  Cluster.run cluster;
  match !result with Some v -> v | None -> Alcotest.fail "body did not run"

let flagged t =
  List.sort_uniq compare
    (List.map (fun r -> Dsan.invariant_name r.Dsan.invariant) (Dsan.violations t))

let check_flagged msg t names =
  Alcotest.(check (list string)) msg names (flagged t)

(* A sanitizer over a throwaway cluster, used purely as an injection
   sink: events are synthesized, never produced by the cluster itself. *)
let with_sink f =
  let cluster = Cluster.create (small_params 4) in
  let t = Dsan.attach cluster in
  Fun.protect ~finally:(fun () -> Dsan.detach t) (fun () -> f t)

let addr ?(color = 0) ~node ~offset () =
  Gaddr.with_color (Gaddr.make ~node ~offset) color

(* ------------------------------------------------------------------ *)
(* Injection: every invariant class must be caught *)

let test_inject_double_owner () =
  with_sink (fun t ->
      let g = addr ~node:1 ~offset:4096 () in
      Dsan.observe_protocol t ~time:0.0 ~node:1 ~thread:0
        (P.Ev_create { g; size = 64 });
      Dsan.observe_protocol t ~time:2e-6 ~node:2 ~thread:1
        (P.Ev_create { g; size = 64 });
      check_flagged "double owner" t [ "dsan.single_owner" ];
      match Dsan.violations t with
      | [ r ] ->
          Alcotest.(check int) "attributed to node" 2 r.Dsan.node;
          Alcotest.(check int) "attributed to thread" 1 r.Dsan.thread;
          Alcotest.(check (float 1e-12)) "virtual time" 2e-6 r.Dsan.time;
          Alcotest.(check bool) "addr attributed" true (r.Dsan.addr <> None);
          Alcotest.(check bool) "provenance nonempty" true
            (r.Dsan.provenance <> [])
      | rs -> Alcotest.failf "expected one report, got %d" (List.length rs))

let test_inject_stale_cache_read () =
  with_sink (fun t ->
      let g0 = addr ~node:1 ~offset:4096 () in
      let g1 = addr ~color:1 ~node:1 ~offset:4096 () in
      Dsan.observe_protocol t ~time:0.0 ~node:1 ~thread:0
        (P.Ev_create { g = g0; size = 64 });
      Dsan.observe_cache t ~time:1e-6 ~node:3 (Cache.Insert { key = g0; size = 64 });
      Dsan.observe_protocol t ~time:2e-6 ~node:1 ~thread:0
        (P.Ev_write { before = g0; after = g1; size = 64; kind = P.W_bump });
      (* read served from the copy fetched under the old color *)
      Dsan.observe_protocol t ~time:3e-6 ~node:3 ~thread:2
        (P.Ev_read { g = g1; path = P.Path_cache g0 });
      check_flagged "stale cached copy served" t [ "dsan.stale_cache_read" ])

let test_inject_stale_cache_hit () =
  with_sink (fun t ->
      let g0 = addr ~node:1 ~offset:4096 () in
      let g1 = addr ~color:1 ~node:1 ~offset:4096 () in
      Dsan.observe_protocol t ~time:0.0 ~node:1 ~thread:0
        (P.Ev_create { g = g0; size = 64 });
      Dsan.observe_protocol t ~time:1e-6 ~node:1 ~thread:0
        (P.Ev_write { before = g0; after = g1; size = 64; kind = P.W_bump });
      (* the cache itself reports a hit under a stale colored key *)
      Dsan.observe_cache t ~time:2e-6 ~node:2 (Cache.Hit { key = g0 });
      check_flagged "stale hit" t [ "dsan.stale_cache_read" ])

let test_inject_inplace_write_with_live_copies () =
  (* The invariant the pinned write-through bug violated: an in-place
     value change while copies fetched under the current color are still
     reachable in remote caches. *)
  with_sink (fun t ->
      let g = addr ~node:0 ~offset:8192 () in
      Dsan.observe_protocol t ~time:0.0 ~node:0 ~thread:0
        (P.Ev_create { g; size = 64 });
      Dsan.observe_cache t ~time:1e-6 ~node:2 (Cache.Insert { key = g; size = 64 });
      Dsan.observe_protocol t ~time:2e-6 ~node:1 ~thread:3
        (P.Ev_write { before = g; after = g; size = 64; kind = P.W_in_place });
      check_flagged "in-place write with reachable copies" t
        [ "dsan.move_invalidation" ])

let test_inject_negative_refcount () =
  with_sink (fun t ->
      let g = addr ~node:2 ~offset:256 () in
      Dsan.observe_rc t ~time:0.0 ~node:2 ~thread:0
        (Darc.Rc_created { g; size = 32; count = 1 });
      Dsan.observe_rc t ~time:1e-6 ~node:2 ~thread:0
        (Darc.Rc_released { g; count = 0 });
      Dsan.observe_rc t ~time:2e-6 ~node:3 ~thread:1
        (Darc.Rc_released { g; count = -1 });
      check_flagged "negative refcount" t [ "dsan.refcount_sanity" ])

let test_inject_refcount_divergence_and_leak () =
  with_sink (fun t ->
      let g = addr ~node:2 ~offset:512 () in
      Dsan.observe_rc t ~time:0.0 ~node:2 ~thread:0
        (Darc.Rc_created { g; size = 32; count = 1 });
      (* implementation says 3, shadow says 2: lost update on the count *)
      Dsan.observe_rc t ~time:1e-6 ~node:2 ~thread:0
        (Darc.Rc_retained { g; count = 3 });
      check_flagged "diverged" t [ "dsan.refcount_sanity" ];
      Dsan.clear t;
      (* freed while the shadow still expects holders *)
      Dsan.observe_rc t ~time:2e-6 ~node:2 ~thread:0 (Darc.Rc_freed { g });
      check_flagged "freed with holders" t [ "dsan.refcount_sanity" ];
      Dsan.clear t;
      (* and any use after the free *)
      Dsan.observe_rc t ~time:3e-6 ~node:2 ~thread:0
        (Darc.Rc_retained { g; count = 1 });
      check_flagged "retain after free" t [ "dsan.use_after_free" ])

let test_inject_foreign_unlock () =
  with_sink (fun t ->
      let g = addr ~node:0 ~offset:64 () in
      Dsan.observe_lock t ~time:0.0 ~node:0 ~thread:1
        (Dmutex.Lock_created { g });
      Dsan.observe_lock t ~time:1e-6 ~node:0 ~thread:1
        (Dmutex.Lock_acquired { g; thread = 1 });
      Dsan.observe_lock t ~time:2e-6 ~node:2 ~thread:7
        (Dmutex.Lock_released { g; thread = 7 });
      check_flagged "foreign unlock" t [ "dsan.lock_discipline" ])

let test_inject_double_grant () =
  with_sink (fun t ->
      let g = addr ~node:0 ~offset:64 () in
      Dsan.observe_lock t ~time:0.0 ~node:0 ~thread:1
        (Dmutex.Lock_created { g });
      Dsan.observe_lock t ~time:1e-6 ~node:0 ~thread:1
        (Dmutex.Lock_acquired { g; thread = 1 });
      Dsan.observe_lock t ~time:2e-6 ~node:1 ~thread:2
        (Dmutex.Lock_acquired { g; thread = 2 });
      check_flagged "double grant" t [ "dsan.lock_discipline" ])

let test_inject_double_promotion () =
  with_sink (fun t ->
      Dsan.observe_failover t ~time:1e-3 ~node:0
        (Replication.Node_failed { node = 1 });
      Dsan.observe_failover t ~time:2e-3 ~node:0
        (Replication.Promoted { home = 1; by = 2; replica = 0 });
      Alcotest.(check int) "first promotion legal" 0 (Dsan.violation_count t);
      Dsan.observe_failover t ~time:3e-3 ~node:0
        (Replication.Promoted { home = 1; by = 3; replica = 1 });
      check_flagged "second promotion of a served range" t
        [ "dsan.promotion_uniqueness" ])

let test_inject_promotion_without_purge () =
  (* The invariant the failover purge bug violated: copies of the
     promoted range still cached on survivors after the promotion. *)
  with_sink (fun t ->
      let g = addr ~node:1 ~offset:4096 () in
      Dsan.observe_protocol t ~time:0.0 ~node:0 ~thread:0
        (P.Ev_create { g; size = 64 });
      Dsan.observe_cache t ~time:1e-6 ~node:3 (Cache.Insert { key = g; size = 64 });
      Dsan.observe_failover t ~time:1e-3 ~node:0
        (Replication.Node_failed { node = 1 });
      Dsan.observe_failover t ~time:2e-3 ~node:0
        (Replication.Promoted { home = 1; by = 2; replica = 0 });
      check_flagged "copies survived the failover purge" t
        [ "dsan.move_invalidation" ])

let test_inject_epoch_regression () =
  with_sink (fun t ->
      Dsan.observe_membership t ~time:1e-3 ~node:0
        (Membership.View_change { epoch = 1; reason = "join" });
      Dsan.observe_membership t ~time:2e-3 ~node:0
        (Membership.View_change { epoch = 3; reason = "leave" });
      Alcotest.(check int) "monotone climb legal" 0 (Dsan.violation_count t);
      (* a repeated epoch is as illegal as a regression: both mean two
         views could answer for the same instant *)
      Dsan.observe_membership t ~time:3e-3 ~node:0
        (Membership.View_change { epoch = 3; reason = "echo" });
      check_flagged "repeated epoch" t [ "dsan.epoch_monotonic" ];
      Dsan.clear t;
      Dsan.observe_membership t ~time:4e-3 ~node:0
        (Membership.View_change { epoch = 2; reason = "rollback" });
      check_flagged "epoch went backwards" t [ "dsan.epoch_monotonic" ])

let test_inject_handoff_atomicity () =
  with_sink (fun t ->
      (* commit with no prepare *)
      Dsan.observe_membership t ~time:1e-3 ~node:0
        (Membership.Handoff_committed
           { home = 1; from_node = 1; to_node = 2; epoch = 1 });
      check_flagged "commit without prepare" t [ "dsan.handoff_atomicity" ];
      Dsan.clear t;
      (* prepare/commit endpoint mismatch: the range would end up with a
         server the prepare never named *)
      Dsan.observe_membership t ~time:2e-3 ~node:0
        (Membership.Handoff_prepared { home = 3; from_node = 3; to_node = 0 });
      Dsan.observe_membership t ~time:3e-3 ~node:0
        (Membership.Handoff_committed
           { home = 3; from_node = 3; to_node = 1; epoch = 2 });
      check_flagged "commit does not match prepare" t
        [ "dsan.handoff_atomicity" ];
      Dsan.clear t;
      (* a second prepare for a range already in flight *)
      Dsan.observe_membership t ~time:4e-3 ~node:0
        (Membership.Handoff_prepared { home = 0; from_node = 0; to_node = 2 });
      Dsan.observe_membership t ~time:5e-3 ~node:0
        (Membership.Handoff_prepared { home = 0; from_node = 0; to_node = 3 });
      check_flagged "double prepare" t [ "dsan.handoff_atomicity" ];
      Dsan.clear t;
      (* prepare from a node that does not serve the range: committing it
         would leave the range with two servers *)
      Dsan.observe_membership t ~time:6e-3 ~node:0
        (Membership.Handoff_prepared { home = 2; from_node = 3; to_node = 0 });
      check_flagged "prepare from a non-server" t [ "dsan.handoff_atomicity" ];
      Dsan.clear t;
      (* handing a range to a dead node: zero servers *)
      Dsan.observe_failover t ~time:7e-3 ~node:0
        (Replication.Node_failed { node = 3 });
      Dsan.observe_membership t ~time:8e-3 ~node:0
        (Membership.Handoff_prepared { home = 1; from_node = 1; to_node = 3 });
      check_flagged "prepare toward a dead node" t [ "dsan.handoff_atomicity" ])

let test_inject_bad_reseed () =
  with_sink (fun t ->
      Dsan.observe_membership t ~time:1e-3 ~node:0
        (Membership.Chain_reseeded { home = 1; server = 1; hosts = [] });
      check_flagged "empty chain" t [ "dsan.replica_chain_intact" ];
      Dsan.clear t;
      Dsan.observe_membership t ~time:2e-3 ~node:0
        (Membership.Chain_reseeded { home = 1; server = 1; hosts = [ 2; 2 ] });
      check_flagged "duplicate host" t [ "dsan.replica_chain_intact" ];
      Dsan.clear t;
      Dsan.observe_membership t ~time:3e-3 ~node:0
        (Membership.Chain_reseeded { home = 1; server = 1; hosts = [ 1 ] });
      check_flagged "replica co-located with server" t
        [ "dsan.replica_chain_intact" ];
      Dsan.clear t;
      Dsan.observe_failover t ~time:4e-3 ~node:0
        (Replication.Node_failed { node = 3 });
      Dsan.observe_membership t ~time:5e-3 ~node:0
        (Membership.Chain_reseeded { home = 1; server = 1; hosts = [ 3 ] });
      check_flagged "replica on a dead host" t [ "dsan.replica_chain_intact" ];
      Dsan.clear t;
      (* chain announced around a server that does not serve the range *)
      Dsan.observe_membership t ~time:6e-3 ~node:0
        (Membership.Chain_reseeded { home = 1; server = 2; hosts = [ 0 ] });
      check_flagged "server mismatch" t [ "dsan.replica_chain_intact" ])

let test_inject_borrow_violations () =
  with_sink (fun t ->
      let g = addr ~node:0 ~offset:128 () in
      let g1 = addr ~color:1 ~node:0 ~offset:128 () in
      Dsan.observe_protocol t ~time:0.0 ~node:0 ~thread:0
        (P.Ev_create { g; size = 64 });
      Dsan.observe_protocol t ~time:1e-6 ~node:0 ~thread:0
        (P.Ev_borrow_imm { g });
      Dsan.observe_protocol t ~time:2e-6 ~node:0 ~thread:0
        (P.Ev_write { before = g; after = g1; size = 64; kind = P.W_bump });
      check_flagged "write while immutably borrowed" t
        [ "dsan.borrow_discipline" ];
      Dsan.clear t;
      Dsan.observe_protocol t ~time:3e-6 ~node:0 ~thread:1
        (P.Ev_borrow_mut { g = g1 });
      check_flagged "mut borrow while shared" t [ "dsan.borrow_discipline" ])

let test_inject_use_after_free () =
  with_sink (fun t ->
      let g = addr ~node:0 ~offset:128 () in
      Dsan.observe_protocol t ~time:0.0 ~node:0 ~thread:0
        (P.Ev_create { g; size = 64 });
      Dsan.observe_protocol t ~time:1e-6 ~node:0 ~thread:0 (P.Ev_drop { g });
      Dsan.observe_protocol t ~time:2e-6 ~node:0 ~thread:0
        (P.Ev_read { g; path = P.Path_local });
      check_flagged "read after drop" t [ "dsan.use_after_free" ])

let test_raise_mode () =
  let cluster = Cluster.create (small_params 2) in
  let t = Dsan.attach ~mode:Dsan.Raise cluster in
  Fun.protect
    ~finally:(fun () -> Dsan.detach t)
    (fun () ->
      let g = addr ~node:1 ~offset:4096 () in
      Dsan.observe_protocol t ~time:0.0 ~node:1 ~thread:0
        (P.Ev_create { g; size = 64 });
      match
        Dsan.observe_protocol t ~time:1e-6 ~node:1 ~thread:0
          (P.Ev_create { g; size = 64 })
      with
      | () -> Alcotest.fail "expected Dsan.Violation"
      | exception Dsan.Violation r ->
          Alcotest.(check string)
            "raised the right invariant" "dsan.single_owner"
            (Dsan.invariant_name r.Dsan.invariant))

let test_report_rendering () =
  with_sink (fun t ->
      let g = addr ~node:1 ~offset:4096 () in
      Dsan.observe_protocol t ~time:0.0 ~node:1 ~thread:0
        (P.Ev_create { g; size = 64 });
      Dsan.observe_protocol t ~time:2e-6 ~node:2 ~thread:1
        (P.Ev_create { g; size = 64 });
      let s = Dsan.report_to_string (List.hd (Dsan.violations t)) in
      Alcotest.(check bool) "names the invariant" true
        (Astring.String.is_infix ~affix:"dsan.single_owner" s);
      Alcotest.(check bool) "carries provenance" true
        (Astring.String.is_infix ~affix:"create" s))

(* ------------------------------------------------------------------ *)
(* Clean runs: real workloads must not trip the sanitizer *)

let test_clean_protocol_traffic () =
  let violations =
    in_cluster ~nodes:4 (fun cluster ->
        Dsan.with_sanitizer cluster (fun t ->
            let ctx0 = Ctx.make cluster ~node:0 in
            let ctx1 = Ctx.make cluster ~node:1 in
            (* owner life cycle: create, bump, borrow, remote deref,
               mutable borrow, transfer, drop *)
            let o = P.create ctx0 ~size:64 (pack 1) in
            P.owner_write ctx0 o (pack 2);
            let r = P.borrow_imm ctx0 o in
            Alcotest.(check int) "remote imm deref" 2
              (unpack (P.imm_deref ctx1 r));
            P.drop_imm ctx1 r;
            let m = P.borrow_mut ctx0 o in
            P.mut_write ctx0 m (pack 3);
            P.drop_mut ctx0 m;
            P.transfer ctx0 o ~to_node:1;
            Alcotest.(check int) "post-transfer read" 3
              (unpack (P.owner_read ctx1 o));
            P.drop_owner ctx1 o;
            (* refcounted cells, cross-node *)
            let a = Darc.create ctx0 ~size:32 (pack 7) in
            let b = Darc.clone ctx1 a in
            Alcotest.(check int) "darc get" 7 (unpack (Darc.get ctx1 b));
            Darc.drop ctx0 a;
            Darc.drop ctx1 b;
            let c = Drc.create ctx0 ~size:32 (pack 9) in
            let d = Drc.clone ctx0 c in
            Drc.drop ctx0 c;
            Drc.drop ctx0 d;
            (* lock handoff between two simulated threads *)
            let mu = Dmutex.create ctx0 ~size:16 (pack 0) in
            Dmutex.lock ctx0 mu;
            Dmutex.unlock ctx0 mu;
            Dmutex.lock ctx1 mu;
            Dmutex.unlock ctx1 mu;
            Dsan.violation_count t))
  in
  Alcotest.(check int) "zero violations" 0 violations

let test_clean_pinned_write_through () =
  (* Regression for the bug DSan surfaced: a remote write-through to a
     pinned object must close the epoch (publish a fresh color) so the
     reader's cached copy becomes unreachable. *)
  let violations =
    in_cluster ~nodes:2 (fun cluster ->
        Dsan.with_sanitizer cluster (fun t ->
            let ctx0 = Ctx.make cluster ~node:0 in
            let ctx1 = Ctx.make cluster ~node:1 in
            let o = P.create ctx0 ~size:64 (pack 1) in
            P.pin ctx0 o;
            P.transfer ctx0 o ~to_node:1;
            (* the reader on node 1 caches a copy under the current color *)
            Alcotest.(check int) "pre-write read" 1
              (unpack (P.owner_read ctx1 o));
            let color_before = P.color o in
            P.owner_write ctx1 o (pack 2);
            Alcotest.(check bool)
              "write-through closed the epoch (color changed)" true
              (P.color o <> color_before);
            Alcotest.(check int) "post-write read sees the new value" 2
              (unpack (P.owner_read ctx1 o));
            Dsan.violation_count t))
  in
  Alcotest.(check int) "zero violations" 0 violations

let test_clean_chaos_failover () =
  (* Regression for the second bug DSan surfaced: fail_and_promote must
     purge surviving caches of the promoted range, or the promotion shadow
     check reports reachable stale copies. *)
  let violations =
    in_cluster ~nodes:4 (fun cluster ->
        Dsan.with_sanitizer cluster (fun t ->
            let ctx0 = Ctx.make cluster ~node:0 in
            let ctx2 = Ctx.make cluster ~node:2 in
            let o = P.create_on ctx0 ~node:1 ~size:64 (pack 42) in
            let repl = Replication.enable cluster in
            (* survivors cache copies of the soon-to-die range *)
            Alcotest.(check int) "pre-crash remote read" 42
              (unpack (P.owner_read ctx2 o));
            Replication.fail_and_promote ctx0 repl ~node:1;
            Alcotest.(check int) "range re-served by the backup" 2
              (Cluster.serving_node cluster 1);
            Alcotest.(check int) "post-crash read via promoted replica" 42
              (unpack (P.owner_read ctx2 o));
            Replication.disable repl;
            Dsan.violation_count t))
  in
  Alcotest.(check int) "zero violations" 0 violations

(* ------------------------------------------------------------------ *)
(* Determinism: the sanitizer must be purely observational *)

let capture_stdout f =
  let tmp = Filename.temp_file "dsan_cap" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close fd
  in
  let r =
    try f ()
    with e ->
      restore ();
      Sys.remove tmp;
      raise e
  in
  restore ();
  let ic = open_in_bin tmp in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  (r, s)

let check_bit_identical name plain sanitized =
  if not (String.equal plain sanitized) then begin
    let n = min (String.length plain) (String.length sanitized) in
    let i = ref 0 in
    while !i < n && plain.[!i] = sanitized.[!i] do
      incr i
    done;
    Alcotest.failf
      "%s: sanitized stdout diverges at byte %d (lengths %d vs %d): %S vs %S"
      name !i (String.length plain) (String.length sanitized)
      (String.sub plain !i (min 60 (String.length plain - !i)))
      (String.sub sanitized !i (min 60 (String.length sanitized - !i)))
  end

let sanitized_total () =
  List.fold_left
    (fun acc t -> acc + Dsan.violation_count t)
    0 (Dsan.attached ())

let test_sanitized_fig5_bit_identical () =
  let module Fig5 = Drust_experiments.Fig5 in
  let (), plain = capture_stdout (fun () -> ignore (Fig5.run ~node_counts:[ 1; 2 ] ())) in
  Dsan.install_global ();
  let (), sanitized =
    Fun.protect
      ~finally:(fun () -> Dsan.uninstall_global ())
      (fun () ->
        capture_stdout (fun () -> ignore (Fig5.run ~node_counts:[ 1; 2 ] ())))
  in
  Alcotest.(check int) "fig5 sanitized cleanly" 0 (sanitized_total ());
  check_bit_identical "fig5" plain sanitized

let test_sanitized_fig6_bit_identical () =
  let module Fig6 = Drust_experiments.Fig6 in
  let (), plain = capture_stdout (fun () -> ignore (Fig6.run ())) in
  Dsan.install_global ();
  let (), sanitized =
    Fun.protect
      ~finally:(fun () -> Dsan.uninstall_global ())
      (fun () -> capture_stdout (fun () -> ignore (Fig6.run ())))
  in
  Alcotest.(check int) "fig6 sanitized cleanly" 0 (sanitized_total ());
  check_bit_identical "fig6" plain sanitized

(* ------------------------------------------------------------------ *)
(* Two-cluster isolation: with all per-cluster state in the Env record,
   two clusters stepped in lockstep in one process must not observe each
   other — separate sanitizers, probes, listeners, protocol options and
   stats, with zero cross-talk. *)

let test_two_clusters_interleaved_isolation () =
  let a = Cluster.create (small_params 2) in
  let b = Cluster.create (small_params 2) in
  let ta = Dsan.attach a in
  let tb = Dsan.attach b in
  (* Per-cluster probes and refcount listeners that also assert every
     event they see belongs to their own cluster. *)
  let probes_a = ref 0 and probes_b = ref 0 in
  let rc_a = ref 0 and rc_b = ref 0 in
  let probe own counter ctx _ev =
    if Ctx.cluster ctx != own then
      Alcotest.fail "probe cross-talk: event from the other cluster";
    incr counter
  in
  let rc own counter ctx _ev =
    if Ctx.cluster ctx != own then
      Alcotest.fail "listener cross-talk: event from the other cluster";
    incr counter
  in
  P.set_probe a (Some (probe a probes_a));
  P.set_probe b (Some (probe b probes_b));
  Darc.set_listener a (Some (rc a rc_a));
  Darc.set_listener b (Some (rc b rc_b));
  (* Divergent per-cluster options: A moves on every access, B keeps the
     default coloring protocol. *)
  P.set_always_move a true;
  let moves_a = ref 0 and moves_b = ref 0 in
  let workload cluster moves =
    ignore
      (Engine.spawn (Cluster.engine cluster) (fun () ->
           let ctx = Ctx.make cluster ~node:0 in
           P.reset_protocol_stats ctx;
           let o = P.create ctx ~size:64 (pack 0) in
           (* Alternate read and write epochs: each write then resolves
              by a color bump (default) or a forced move (always_move). *)
           for i = 1 to 8 do
             let rr = P.borrow_imm ctx o in
             ignore (P.imm_deref ctx rr);
             P.drop_imm ctx rr;
             P.owner_modify ctx o (fun v -> pack (unpack v + i))
           done;
           let arc = Darc.create ctx ~size:64 (pack 1) in
           Darc.drop ctx (Darc.clone ctx arc);
           Darc.drop ctx arc;
           Ctx.flush ctx;
           moves := P.moves ctx))
  in
  workload a moves_a;
  workload b moves_b;
  (* Interleave the two engines event by event in one domain. *)
  let ea = Cluster.engine a and eb = Cluster.engine b in
  let rec lockstep () =
    let ra = Engine.step ea in
    let rb = Engine.step eb in
    if ra || rb then lockstep ()
  in
  lockstep ();
  Alcotest.(check bool) "A saw its probes" true (!probes_a > 0);
  Alcotest.(check bool) "B saw its probes" true (!probes_b > 0);
  Alcotest.(check bool) "A saw its rc events" true (!rc_a > 0);
  Alcotest.(check bool) "B saw its rc events" true (!rc_b > 0);
  (* Same deterministic workload, so the event counts must agree —
     any leakage of one cluster's events into the other's cell breaks
     the equality. *)
  Alcotest.(check int) "equal probe streams" !probes_a !probes_b;
  Alcotest.(check int) "equal rc streams" !rc_a !rc_b;
  (* The always_move option stayed confined to A: B resolves the write
     epochs with color bumps after its initial ownership move, so A must
     have strictly more moves. *)
  Alcotest.(check bool) "A moved" true (!moves_a > 0);
  Alcotest.(check bool) "always_move confined to A" true (!moves_a > !moves_b);
  (* Both sanitizers watched a full run each and stayed clean, on their
     own cluster. *)
  Alcotest.(check bool) "ta on a" true (Dsan.cluster ta == a);
  Alcotest.(check bool) "tb on b" true (Dsan.cluster tb == b);
  Alcotest.(check int) "A sanitizer clean" 0 (Dsan.violation_count ta);
  Alcotest.(check int) "B sanitizer clean" 0 (Dsan.violation_count tb);
  Dsan.detach ta;
  Dsan.detach tb

let () =
  Alcotest.run "check"
    [
      ( "injection",
        [
          Alcotest.test_case "double owner" `Quick test_inject_double_owner;
          Alcotest.test_case "stale cached copy read" `Quick
            test_inject_stale_cache_read;
          Alcotest.test_case "stale cache hit" `Quick test_inject_stale_cache_hit;
          Alcotest.test_case "in-place write with live copies" `Quick
            test_inject_inplace_write_with_live_copies;
          Alcotest.test_case "negative refcount" `Quick
            test_inject_negative_refcount;
          Alcotest.test_case "refcount divergence / leak / UAF" `Quick
            test_inject_refcount_divergence_and_leak;
          Alcotest.test_case "foreign unlock" `Quick test_inject_foreign_unlock;
          Alcotest.test_case "double lock grant" `Quick test_inject_double_grant;
          Alcotest.test_case "double promotion" `Quick
            test_inject_double_promotion;
          Alcotest.test_case "promotion without cache purge" `Quick
            test_inject_promotion_without_purge;
          Alcotest.test_case "epoch regression" `Quick
            test_inject_epoch_regression;
          Alcotest.test_case "handoff atomicity" `Quick
            test_inject_handoff_atomicity;
          Alcotest.test_case "bad reseed chain" `Quick test_inject_bad_reseed;
          Alcotest.test_case "borrow discipline" `Quick
            test_inject_borrow_violations;
          Alcotest.test_case "use after free" `Quick test_inject_use_after_free;
          Alcotest.test_case "raise mode" `Quick test_raise_mode;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
        ] );
      ( "clean-runs",
        [
          Alcotest.test_case "protocol + runtime traffic" `Quick
            test_clean_protocol_traffic;
          Alcotest.test_case "pinned write-through (regression)" `Quick
            test_clean_pinned_write_through;
          Alcotest.test_case "chaos failover purge (regression)" `Quick
            test_clean_chaos_failover;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig5 sanitized == unsanitized" `Slow
            test_sanitized_fig5_bit_identical;
          Alcotest.test_case "fig6 sanitized == unsanitized" `Slow
            test_sanitized_fig6_bit_identical;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "two clusters interleaved" `Quick
            test_two_clusters_interleaved_isolation;
        ] );
    ]
