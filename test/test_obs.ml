(* Tests for the observability layer: the metrics registry, the span
   tracer, and the exporters (Chrome trace_event JSON, metrics JSONL). *)

module Metrics = Drust_obs.Metrics
module Span = Drust_obs.Span
module Export = Drust_obs.Export

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_counter_roundtrip () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~unit_:"ops" "test.ops" in
  Alcotest.(check int) "starts at 0" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "1 + 4" 5 (Metrics.value c);
  Metrics.reset_counter c;
  Alcotest.(check int) "reset" 0 (Metrics.value c)

let test_get_or_create_shares_handles () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~labels:[ ("node", "1") ] "test.shared" in
  let b = Metrics.counter m ~labels:[ ("node", "1") ] "test.shared" in
  Metrics.incr a;
  Metrics.incr b;
  Alcotest.(check int) "same instrument" 2 (Metrics.value a);
  (* Different labels: a distinct series. *)
  let c = Metrics.counter m ~labels:[ ("node", "2") ] "test.shared" in
  Alcotest.(check int) "distinct series" 0 (Metrics.value c)

let test_labels_normalized () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~labels:[ ("a", "1"); ("b", "2") ] "test.norm" in
  let b = Metrics.counter m ~labels:[ ("b", "2"); ("a", "1") ] "test.norm" in
  Metrics.incr a;
  Alcotest.(check int) "label order irrelevant" 1 (Metrics.value b)

let test_kind_mismatch_rejected () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "test.kind");
  Alcotest.(check bool) "counter-then-gauge raises" true
    (try
       ignore (Metrics.gauge m "test.kind");
       false
     with Invalid_argument _ -> true)

let test_disabled_registry_records_nothing () =
  let m = Metrics.create ~enabled:false () in
  let c = Metrics.counter m "test.quiet" in
  let g = Metrics.gauge m "test.level" in
  let h = Metrics.histogram m "test.dist" in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.set g 3.0;
  Metrics.observe h 0.5;
  Alcotest.(check int) "counter still 0" 0 (Metrics.value c);
  Alcotest.(check (float 0.0)) "gauge still 0" 0.0 (Metrics.level g);
  (match Metrics.find (Metrics.snapshot m) "test.dist" with
  | Some (Metrics.Histo hs) ->
      Alcotest.(check int) "histogram empty" 0 hs.Metrics.h_count
  | _ -> Alcotest.fail "histogram sample missing");
  (* Re-enabling starts recording. *)
  Metrics.enable m;
  Metrics.incr c;
  Alcotest.(check int) "records after enable" 1 (Metrics.value c)

let test_histogram_bucketing () =
  let m = Metrics.create () in
  let h =
    Metrics.histogram m ~buckets:[| 1.0; 10.0; 100.0 |] ~unit_:"s" "test.lat"
  in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 5.0; 50.0; 5000.0 ];
  match Metrics.find (Metrics.snapshot m) "test.lat" with
  | Some (Metrics.Histo hs) ->
      Alcotest.(check int) "count" 5 hs.Metrics.h_count;
      Alcotest.(check (float 1e-9)) "sum" 5060.5 hs.Metrics.h_sum;
      Alcotest.(check (float 1e-9)) "min" 0.5 hs.Metrics.h_min;
      Alcotest.(check (float 1e-9)) "max" 5000.0 hs.Metrics.h_max;
      let counts = List.map snd hs.Metrics.h_buckets in
      Alcotest.(check (list int)) "per-bucket + overflow" [ 1; 2; 1; 1 ] counts;
      (match List.rev hs.Metrics.h_buckets with
      | (bound, _) :: _ ->
          Alcotest.(check bool) "overflow bound is inf" true
            (bound = infinity)
      | [] -> Alcotest.fail "no buckets")
  | _ -> Alcotest.fail "histogram sample missing"

let test_snapshot_sorted_and_diff () =
  let m = Metrics.create () in
  let a = Metrics.counter m "test.b" in
  let b = Metrics.counter m "test.a" in
  let g = Metrics.gauge m "test.g" in
  Metrics.incr a;
  Metrics.set g 1.0;
  let before = Metrics.snapshot m in
  Alcotest.(check (list string)) "sorted by name"
    [ "test.a"; "test.b"; "test.g" ]
    (List.map (fun s -> s.Metrics.s_name) before);
  Metrics.add a 2;
  Metrics.incr b;
  Metrics.set g 7.5;
  let after = Metrics.snapshot m in
  let d = Metrics.diff ~before ~after in
  Alcotest.(check int) "counter delta" 2 (Metrics.total d "test.b");
  Alcotest.(check int) "counter delta from 0" 1 (Metrics.total d "test.a");
  match Metrics.find d "test.g" with
  | Some (Metrics.Level v) ->
      Alcotest.(check (float 0.0)) "gauge keeps after" 7.5 v
  | _ -> Alcotest.fail "gauge sample missing"

let test_names_sorted_distinct () =
  let m = Metrics.create () in
  ignore (Metrics.counter m ~labels:[ ("node", "0") ] "test.x");
  ignore (Metrics.counter m ~labels:[ ("node", "1") ] "test.x");
  ignore (Metrics.gauge m "test.a");
  Alcotest.(check (list string)) "distinct sorted" [ "test.a"; "test.x" ]
    (Metrics.names m)

(* ------------------------------------------------------------------ *)
(* Span tracer *)

let manual_clock () =
  let now = ref 0.0 in
  (now, fun () -> !now)

let test_span_disabled_by_default () =
  let _, clock = manual_clock () in
  let t = Span.create ~clock () in
  Alcotest.(check bool) "disabled" false (Span.is_enabled t);
  Span.instant t ~category:"x" "ignored";
  let sp = Span.start t ~category:"x" "also ignored" in
  Span.finish t sp;
  Alcotest.(check int) "count stays 0" 0 (Span.count t);
  Alcotest.(check int) "no events" 0 (List.length (Span.events t))

let test_span_durations_and_nesting () =
  let now, clock = manual_clock () in
  let t = Span.create ~clock () in
  Span.enable t;
  let outer = Span.start t ~track:2 ~category:"fabric" "outer" in
  now := 1.0;
  Alcotest.(check int) "one open span" 1 (Span.depth t ~track:2);
  let inner = Span.start t ~track:2 ~category:"fabric" "inner" in
  Alcotest.(check int) "nested" 2 (Span.depth t ~track:2);
  now := 3.0;
  Span.finish t inner;
  now := 10.0;
  Span.finish t outer;
  Alcotest.(check int) "drained" 0 (Span.depth t ~track:2);
  (match Span.events t with
  | [ i; o ] ->
      (* Completes are recorded at finish time: inner first. *)
      Alcotest.(check string) "inner first" "inner" i.Span.name;
      Alcotest.(check (float 1e-9)) "inner ts" 1.0 i.Span.ts;
      Alcotest.(check (float 1e-9)) "inner dur" 2.0 i.Span.dur;
      Alcotest.(check int) "inner depth" 2 i.Span.depth;
      Alcotest.(check (float 1e-9)) "outer dur" 10.0 o.Span.dur;
      Alcotest.(check int) "outer depth" 1 o.Span.depth
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
  match Span.duration_stats t with
  | [ ("fabric", st) ] ->
      Alcotest.(check int) "2 completes" 2 st.Span.d_count;
      Alcotest.(check (float 1e-9)) "total" 12.0 st.Span.d_total;
      Alcotest.(check (float 1e-9)) "min" 2.0 st.Span.d_min;
      Alcotest.(check (float 1e-9)) "max" 10.0 st.Span.d_max
  | l -> Alcotest.failf "expected 1 category, got %d" (List.length l)

let test_span_ring_overwrites () =
  let _, clock = manual_clock () in
  let t = Span.create ~capacity:4 ~clock () in
  Span.enable t;
  for i = 1 to 10 do
    Span.instant t ~category:"n" (string_of_int i)
  done;
  Alcotest.(check int) "total counts all" 10 (Span.count t);
  Alcotest.(check (list string)) "last four, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Span.name) (Span.events t))

let test_with_span_exception_safe () =
  let now, clock = manual_clock () in
  let t = Span.create ~clock () in
  Span.enable t;
  (try
     Span.with_span t ~category:"c" "boom" (fun () ->
         now := 2.0;
         failwith "boom")
   with Failure _ -> ());
  match Span.events t with
  | [ e ] -> Alcotest.(check (float 1e-9)) "closed on raise" 2.0 e.Span.dur
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Exporters.  A tiny structural JSON check: balanced braces/brackets
   outside strings, plus field probes — not a full parser, but enough
   to catch broken quoting or truncation. *)

let check_balanced_json s =
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  String.iter
    (fun c ->
      if !in_str then
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_str := false
        else ()
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' -> decr depth
        | _ -> ())
    s;
  Alcotest.(check int) "balanced nesting" 0 !depth;
  Alcotest.(check bool) "string closed" false !in_str

let test_chrome_trace_shape () =
  let now, clock = manual_clock () in
  let t = Span.create ~clock () in
  Span.enable t;
  (* Deliberately record completes out of start order: "late" starts
     first but finishes last, so raw ring order is not ts order. *)
  let late = Span.start t ~track:1 ~category:"fabric" "late" in
  now := 1.0;
  Span.with_span t ~track:0 ~category:"protocol"
    ~args:[ ("g", "0x2a"); ("quote", "a\"b") ]
    "early"
    (fun () -> now := 2.0);
  now := 5.0;
  Span.finish t late;
  Span.instant t ~track:1 ~category:"controller" "mark";
  let json = Export.chrome_trace ~process_name:"test-proc" t in
  check_balanced_json json;
  Alcotest.(check bool) "has traceEvents" true
    (String.length json > 0
    && Astring.String.is_infix ~affix:"\"traceEvents\"" json);
  Alcotest.(check bool) "names the process" true
    (Astring.String.is_infix ~affix:"test-proc" json);
  Alcotest.(check bool) "escapes arg quotes" true
    (Astring.String.is_infix ~affix:{|a\"b|} json);
  Alcotest.(check bool) "complete event" true
    (Astring.String.is_infix ~affix:{|"ph":"X"|} json);
  Alcotest.(check bool) "instant event" true
    (Astring.String.is_infix ~affix:{|"ph":"i"|} json);
  (* Body events must be sorted by ts: "early" (ts 1.0) before "late"
     (ts 0.0)?  No — late STARTED at 0.0, so it must come first even
     though it finished last. *)
  let late_pos =
    Astring.String.find_sub ~sub:{|"name":"late"|} json |> Option.get
  in
  let early_pos =
    Astring.String.find_sub ~sub:{|"name":"early"|} json |> Option.get
  in
  Alcotest.(check bool) "sorted by start ts" true (late_pos < early_pos)

let test_metrics_jsonl_shape () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("node", "3") ] ~unit_:"ops" "t.c" in
  Metrics.add c 7;
  Metrics.set (Metrics.gauge m "t.g") 1.5;
  Metrics.observe (Metrics.histogram m ~buckets:[| 1.0 |] "t.h") 0.5;
  let out = Export.metrics_jsonl ~time:2.5 (Metrics.snapshot m) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  Alcotest.(check int) "one line per sample" 3 (List.length lines);
  List.iter check_balanced_json lines;
  Alcotest.(check bool) "counter line" true
    (List.exists
       (fun l ->
         Astring.String.is_infix ~affix:{|"name":"t.c"|} l
         && Astring.String.is_infix ~affix:{|"node":"3"|} l
         && Astring.String.is_infix ~affix:{|"value":7|} l
         && Astring.String.is_infix ~affix:{|"time":2.5|} l)
       lines);
  Alcotest.(check bool) "histogram carries count" true
    (List.exists
       (fun l ->
         Astring.String.is_infix ~affix:{|"name":"t.h"|} l
         && Astring.String.is_infix ~affix:{|"count":1|} l)
       lines)

let test_json_escape () =
  Alcotest.(check string) "quotes and control chars" {|a\"b\\c\nd|}
    (Export.json_escape "a\"b\\c\nd")

(* ------------------------------------------------------------------ *)
(* Integration: a traced cluster run produces consistent data *)

let test_cluster_trace_integration () =
  let module Cluster = Drust_machine.Cluster in
  let module Params = Drust_machine.Params in
  let module Fabric = Drust_net.Fabric in
  let cluster = Cluster.create { Params.default with Params.nodes = 2 } in
  let spans = Cluster.spans cluster in
  Span.enable spans;
  ignore
    (Drust_sim.Engine.spawn (Cluster.engine cluster) (fun () ->
         Fabric.rdma_read (Cluster.fabric cluster) ~from:0 ~target:1 ~bytes:256));
  Cluster.run cluster;
  Alcotest.(check int) "one fabric span" 1 (Span.count spans);
  (match Span.events spans with
  | [ e ] ->
      Alcotest.(check string) "category" "fabric" e.Span.category;
      Alcotest.(check string) "verb" "READ" e.Span.name;
      Alcotest.(check int) "issuing node's track" 0 e.Span.track;
      Alcotest.(check bool) "positive latency" true (e.Span.dur > 0.0)
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l));
  let snap = Metrics.snapshot (Cluster.metrics cluster) in
  Alcotest.(check int) "fabric.reads counted" 1
    (Metrics.total snap "fabric.reads");
  Alcotest.(check int) "bytes counted" 256
    (Metrics.total snap "fabric.bytes_out")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter roundtrip" `Quick test_counter_roundtrip;
          Alcotest.test_case "get-or-create shares" `Quick
            test_get_or_create_shares_handles;
          Alcotest.test_case "labels normalized" `Quick test_labels_normalized;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_rejected;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_registry_records_nothing;
          Alcotest.test_case "histogram bucketing" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "snapshot + diff" `Quick
            test_snapshot_sorted_and_diff;
          Alcotest.test_case "names" `Quick test_names_sorted_distinct;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled by default" `Quick
            test_span_disabled_by_default;
          Alcotest.test_case "durations + nesting" `Quick
            test_span_durations_and_nesting;
          Alcotest.test_case "ring overwrites" `Quick test_span_ring_overwrites;
          Alcotest.test_case "with_span exception-safe" `Quick
            test_with_span_exception_safe;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
          Alcotest.test_case "metrics jsonl shape" `Quick
            test_metrics_jsonl_shape;
          Alcotest.test_case "json escape" `Quick test_json_escape;
        ] );
      ( "integration",
        [
          Alcotest.test_case "traced cluster run" `Quick
            test_cluster_trace_integration;
        ] );
    ]
