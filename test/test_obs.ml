(* Tests for the observability layer: the metrics registry, the span
   tracer, and the exporters (Chrome trace_event JSON, metrics JSONL). *)

module Metrics = Drust_obs.Metrics
module Span = Drust_obs.Span
module Export = Drust_obs.Export

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_counter_roundtrip () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~unit_:"ops" "test.ops" in
  Alcotest.(check int) "starts at 0" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "1 + 4" 5 (Metrics.value c);
  Metrics.reset_counter c;
  Alcotest.(check int) "reset" 0 (Metrics.value c)

let test_get_or_create_shares_handles () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~labels:[ ("node", "1") ] "test.shared" in
  let b = Metrics.counter m ~labels:[ ("node", "1") ] "test.shared" in
  Metrics.incr a;
  Metrics.incr b;
  Alcotest.(check int) "same instrument" 2 (Metrics.value a);
  (* Different labels: a distinct series. *)
  let c = Metrics.counter m ~labels:[ ("node", "2") ] "test.shared" in
  Alcotest.(check int) "distinct series" 0 (Metrics.value c)

let test_labels_normalized () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~labels:[ ("a", "1"); ("b", "2") ] "test.norm" in
  let b = Metrics.counter m ~labels:[ ("b", "2"); ("a", "1") ] "test.norm" in
  Metrics.incr a;
  Alcotest.(check int) "label order irrelevant" 1 (Metrics.value b)

let test_kind_mismatch_rejected () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "test.kind");
  Alcotest.(check bool) "counter-then-gauge raises" true
    (try
       ignore (Metrics.gauge m "test.kind");
       false
     with Invalid_argument _ -> true)

let test_disabled_registry_records_nothing () =
  let m = Metrics.create ~enabled:false () in
  let c = Metrics.counter m "test.quiet" in
  let g = Metrics.gauge m "test.level" in
  let h = Metrics.histogram m "test.dist" in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.set g 3.0;
  Metrics.observe h 0.5;
  Alcotest.(check int) "counter still 0" 0 (Metrics.value c);
  Alcotest.(check (float 0.0)) "gauge still 0" 0.0 (Metrics.level g);
  (match Metrics.find (Metrics.snapshot m) "test.dist" with
  | Some (Metrics.Histo hs) ->
      Alcotest.(check int) "histogram empty" 0 hs.Metrics.h_count
  | _ -> Alcotest.fail "histogram sample missing");
  (* Re-enabling starts recording. *)
  Metrics.enable m;
  Metrics.incr c;
  Alcotest.(check int) "records after enable" 1 (Metrics.value c)

let test_histogram_bucketing () =
  let m = Metrics.create () in
  let h =
    Metrics.histogram m ~buckets:[| 1.0; 10.0; 100.0 |] ~unit_:"s" "test.lat"
  in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 5.0; 50.0; 5000.0 ];
  match Metrics.find (Metrics.snapshot m) "test.lat" with
  | Some (Metrics.Histo hs) ->
      Alcotest.(check int) "count" 5 hs.Metrics.h_count;
      Alcotest.(check (float 1e-9)) "sum" 5060.5 hs.Metrics.h_sum;
      Alcotest.(check (float 1e-9)) "min" 0.5 hs.Metrics.h_min;
      Alcotest.(check (float 1e-9)) "max" 5000.0 hs.Metrics.h_max;
      let counts = List.map snd hs.Metrics.h_buckets in
      Alcotest.(check (list int)) "per-bucket + overflow" [ 1; 2; 1; 1 ] counts;
      (match List.rev hs.Metrics.h_buckets with
      | (bound, _) :: _ ->
          Alcotest.(check bool) "overflow bound is inf" true
            (bound = infinity)
      | [] -> Alcotest.fail "no buckets")
  | _ -> Alcotest.fail "histogram sample missing"

let test_snapshot_sorted_and_diff () =
  let m = Metrics.create () in
  let a = Metrics.counter m "test.b" in
  let b = Metrics.counter m "test.a" in
  let g = Metrics.gauge m "test.g" in
  Metrics.incr a;
  Metrics.set g 1.0;
  let before = Metrics.snapshot m in
  Alcotest.(check (list string)) "sorted by name"
    [ "test.a"; "test.b"; "test.g" ]
    (List.map (fun s -> s.Metrics.s_name) before);
  Metrics.add a 2;
  Metrics.incr b;
  Metrics.set g 7.5;
  let after = Metrics.snapshot m in
  let d = Metrics.diff ~before ~after in
  Alcotest.(check int) "counter delta" 2 (Metrics.total d "test.b");
  Alcotest.(check int) "counter delta from 0" 1 (Metrics.total d "test.a");
  match Metrics.find d "test.g" with
  | Some (Metrics.Level v) ->
      Alcotest.(check (float 0.0)) "gauge keeps after" 7.5 v
  | _ -> Alcotest.fail "gauge sample missing"

let test_names_sorted_distinct () =
  let m = Metrics.create () in
  ignore (Metrics.counter m ~labels:[ ("node", "0") ] "test.x");
  ignore (Metrics.counter m ~labels:[ ("node", "1") ] "test.x");
  ignore (Metrics.gauge m "test.a");
  Alcotest.(check (list string)) "distinct sorted" [ "test.a"; "test.x" ]
    (Metrics.names m)

(* ------------------------------------------------------------------ *)
(* Span tracer *)

let manual_clock () =
  let now = ref 0.0 in
  (now, fun () -> !now)

let test_span_disabled_by_default () =
  let _, clock = manual_clock () in
  let t = Span.create ~clock () in
  Alcotest.(check bool) "disabled" false (Span.is_enabled t);
  Span.instant t ~category:"x" "ignored";
  let sp = Span.start t ~category:"x" "also ignored" in
  Span.finish t sp;
  Alcotest.(check int) "count stays 0" 0 (Span.count t);
  Alcotest.(check int) "no events" 0 (List.length (Span.events t))

let test_span_durations_and_nesting () =
  let now, clock = manual_clock () in
  let t = Span.create ~clock () in
  Span.enable t;
  let outer = Span.start t ~track:2 ~category:"fabric" "outer" in
  now := 1.0;
  Alcotest.(check int) "one open span" 1 (Span.depth t ~track:2);
  let inner = Span.start t ~track:2 ~category:"fabric" "inner" in
  Alcotest.(check int) "nested" 2 (Span.depth t ~track:2);
  now := 3.0;
  Span.finish t inner;
  now := 10.0;
  Span.finish t outer;
  Alcotest.(check int) "drained" 0 (Span.depth t ~track:2);
  (match Span.events t with
  | [ i; o ] ->
      (* Completes are recorded at finish time: inner first. *)
      Alcotest.(check string) "inner first" "inner" i.Span.name;
      Alcotest.(check (float 1e-9)) "inner ts" 1.0 i.Span.ts;
      Alcotest.(check (float 1e-9)) "inner dur" 2.0 i.Span.dur;
      Alcotest.(check int) "inner depth" 2 i.Span.depth;
      Alcotest.(check (float 1e-9)) "outer dur" 10.0 o.Span.dur;
      Alcotest.(check int) "outer depth" 1 o.Span.depth
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
  match Span.duration_stats t with
  | [ ("fabric", st) ] ->
      Alcotest.(check int) "2 completes" 2 st.Span.d_count;
      Alcotest.(check (float 1e-9)) "total" 12.0 st.Span.d_total;
      Alcotest.(check (float 1e-9)) "min" 2.0 st.Span.d_min;
      Alcotest.(check (float 1e-9)) "max" 10.0 st.Span.d_max
  | l -> Alcotest.failf "expected 1 category, got %d" (List.length l)

let test_span_ring_overwrites () =
  let _, clock = manual_clock () in
  let t = Span.create ~capacity:4 ~clock () in
  Span.enable t;
  for i = 1 to 10 do
    Span.instant t ~category:"n" (string_of_int i)
  done;
  Alcotest.(check int) "total counts all" 10 (Span.count t);
  Alcotest.(check (list string)) "last four, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Span.name) (Span.events t))

let test_with_span_exception_safe () =
  let now, clock = manual_clock () in
  let t = Span.create ~clock () in
  Span.enable t;
  (try
     Span.with_span t ~category:"c" "boom" (fun () ->
         now := 2.0;
         failwith "boom")
   with Failure _ -> ());
  match Span.events t with
  | [ e ] -> Alcotest.(check (float 1e-9)) "closed on raise" 2.0 e.Span.dur
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Exporters.  A tiny structural JSON check: balanced braces/brackets
   outside strings, plus field probes — not a full parser, but enough
   to catch broken quoting or truncation. *)

let check_balanced_json s =
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  String.iter
    (fun c ->
      if !in_str then
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_str := false
        else ()
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' -> decr depth
        | _ -> ())
    s;
  Alcotest.(check int) "balanced nesting" 0 !depth;
  Alcotest.(check bool) "string closed" false !in_str

let test_chrome_trace_shape () =
  let now, clock = manual_clock () in
  let t = Span.create ~clock () in
  Span.enable t;
  (* Deliberately record completes out of start order: "late" starts
     first but finishes last, so raw ring order is not ts order. *)
  let late = Span.start t ~track:1 ~category:"fabric" "late" in
  now := 1.0;
  Span.with_span t ~track:0 ~category:"protocol"
    ~args:[ ("g", "0x2a"); ("quote", "a\"b") ]
    "early"
    (fun () -> now := 2.0);
  now := 5.0;
  Span.finish t late;
  Span.instant t ~track:1 ~category:"controller" "mark";
  let json = Export.chrome_trace ~process_name:"test-proc" t in
  check_balanced_json json;
  Alcotest.(check bool) "has traceEvents" true
    (String.length json > 0
    && Astring.String.is_infix ~affix:"\"traceEvents\"" json);
  Alcotest.(check bool) "names the process" true
    (Astring.String.is_infix ~affix:"test-proc" json);
  Alcotest.(check bool) "escapes arg quotes" true
    (Astring.String.is_infix ~affix:{|a\"b|} json);
  Alcotest.(check bool) "complete event" true
    (Astring.String.is_infix ~affix:{|"ph":"X"|} json);
  Alcotest.(check bool) "instant event" true
    (Astring.String.is_infix ~affix:{|"ph":"i"|} json);
  (* Body events must be sorted by ts: "early" (ts 1.0) before "late"
     (ts 0.0)?  No — late STARTED at 0.0, so it must come first even
     though it finished last. *)
  let late_pos =
    Astring.String.find_sub ~sub:{|"name":"late"|} json |> Option.get
  in
  let early_pos =
    Astring.String.find_sub ~sub:{|"name":"early"|} json |> Option.get
  in
  Alcotest.(check bool) "sorted by start ts" true (late_pos < early_pos)

let test_metrics_jsonl_shape () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("node", "3") ] ~unit_:"ops" "t.c" in
  Metrics.add c 7;
  Metrics.set (Metrics.gauge m "t.g") 1.5;
  Metrics.observe (Metrics.histogram m ~buckets:[| 1.0 |] "t.h") 0.5;
  let out = Export.metrics_jsonl ~time:2.5 (Metrics.snapshot m) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  Alcotest.(check int) "one line per sample" 3 (List.length lines);
  List.iter check_balanced_json lines;
  Alcotest.(check bool) "counter line" true
    (List.exists
       (fun l ->
         Astring.String.is_infix ~affix:{|"name":"t.c"|} l
         && Astring.String.is_infix ~affix:{|"node":"3"|} l
         && Astring.String.is_infix ~affix:{|"value":7|} l
         && Astring.String.is_infix ~affix:{|"time":2.5|} l)
       lines);
  Alcotest.(check bool) "histogram carries count" true
    (List.exists
       (fun l ->
         Astring.String.is_infix ~affix:{|"name":"t.h"|} l
         && Astring.String.is_infix ~affix:{|"count":1|} l)
       lines)

(* The JSONL dump must read back through the shared lib/util/json
   parser as the identical snapshot — including the "inf" overflow
   bucket bound, which JSON cannot spell as a number. *)
let test_metrics_jsonl_roundtrip () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("node", "3") ] ~unit_:"ops" "t.c" in
  Metrics.add c 7;
  Metrics.set (Metrics.gauge m "t.g") 1.5;
  let h = Metrics.histogram m ~buckets:[| 1.0; 10.0 |] ~unit_:"us" "t.h" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0 ];
  let h2 =
    Metrics.histogram m ~buckets:[| 0.25 |] ~labels:[ ("op", "read") ] "t.h2"
  in
  Metrics.observe h2 0.125;
  let snap = Metrics.snapshot m in
  let parsed = Export.parse_metrics_jsonl (Export.metrics_jsonl snap) in
  Alcotest.(check int) "same sample count" (List.length snap)
    (List.length parsed);
  List.iter2
    (fun (a : Metrics.sample) (b : Metrics.sample) ->
      Alcotest.(check string) "name" a.Metrics.s_name b.Metrics.s_name;
      Alcotest.(check bool)
        (a.Metrics.s_name ^ " roundtrips structurally")
        true (a = b))
    snap parsed;
  (* The ~time stamp is presentation-only and must not break reading. *)
  let stamped = Export.parse_metrics_jsonl (Export.metrics_jsonl ~time:2.5 snap) in
  Alcotest.(check bool) "time-stamped dump reads back" true (stamped = snap);
  (* Malformed lines are rejected, not silently dropped. *)
  Alcotest.(check bool) "missing type raises" true
    (try
       ignore (Export.parse_metrics_jsonl {|{"name":"x","labels":{}}|});
       false
     with Failure _ -> true)

let test_chrome_trace_thread_metadata () =
  let now, clock = manual_clock () in
  let t = Span.create ~clock () in
  Span.enable t;
  Span.instant t ~track:2 ~category:"n" "a";
  now := 1.0;
  Span.instant t ~track:11 ~category:"n" "b";
  let json = Export.chrome_trace t in
  check_balanced_json json;
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("has " ^ affix) true
        (Astring.String.is_infix ~affix json))
    [
      {|"name":"process_name"|};
      {|"name":"thread_name"|};
      {|"name":"node 2"|};
      {|"name":"node 11"|};
      {|"name":"thread_sort_index"|};
      {|"sort_index":11|};
    ]

let test_json_escape () =
  Alcotest.(check string) "quotes and control chars" {|a\"b\\c\nd|}
    (Export.json_escape "a\"b\\c\nd")

(* ------------------------------------------------------------------ *)
(* Integration: a traced cluster run produces consistent data *)

let test_cluster_trace_integration () =
  let module Cluster = Drust_machine.Cluster in
  let module Params = Drust_machine.Params in
  let module Fabric = Drust_net.Fabric in
  let cluster = Cluster.create { Params.default with Params.nodes = 2 } in
  let spans = Cluster.spans cluster in
  Span.enable spans;
  ignore
    (Drust_sim.Engine.spawn (Cluster.engine cluster) (fun () ->
         Fabric.rdma_read (Cluster.fabric cluster) ~from:0 ~target:1 ~bytes:256));
  Cluster.run cluster;
  (* A traced cross-node READ is three causally-linked events: the wire
     sub-span, the target-side SERVE instant, and the verb span (parents
     record after children since completes land at finish time). *)
  Alcotest.(check int) "verb + wire sub-span + serve instant" 3
    (Span.count spans);
  let events = Span.events spans in
  let read =
    match List.filter (fun e -> e.Span.name = "READ") events with
    | [ e ] -> e
    | l -> Alcotest.failf "expected 1 READ event, got %d" (List.length l)
  in
  Alcotest.(check string) "category" "fabric" read.Span.category;
  Alcotest.(check int) "issuing node's track" 0 read.Span.track;
  Alcotest.(check bool) "positive latency" true (read.Span.dur > 0.0);
  Alcotest.(check bool) "READ is a root" true (read.Span.parent = 0);
  let wire = List.find (fun e -> e.Span.name = "wire") events in
  Alcotest.(check int) "wire nests under READ" read.Span.id wire.Span.parent;
  Alcotest.(check string) "wire category" "net.wire" wire.Span.category;
  let serve = List.find (fun e -> e.Span.name = "SERVE(READ)") events in
  Alcotest.(check int) "serve lands on target track" 1 serve.Span.track;
  Alcotest.(check int) "serve nests under READ" read.Span.id serve.Span.parent;
  Alcotest.(check (list int)) "flow edge READ -> SERVE" read.Span.flow_out
    serve.Span.flow_in;
  Alcotest.(check bool) "flow edge minted" true (read.Span.flow_out <> []);
  let snap = Metrics.snapshot (Cluster.metrics cluster) in
  Alcotest.(check int) "fabric.reads counted" 1
    (Metrics.total snap "fabric.reads");
  Alcotest.(check int) "bytes counted" 256
    (Metrics.total snap "fabric.bytes_out")

(* ------------------------------------------------------------------ *)
(* Quantile estimation and histogram merging *)

let find_histo snap ?labels name =
  match Metrics.find snap ?labels name with
  | Some (Metrics.Histo h) -> h
  | _ -> Alcotest.failf "histogram %s missing from snapshot" name

let test_quantile_accuracy () =
  (* Uniform samples over fine linear buckets: the interpolated
     estimate must sit within two bucket widths of the exact sorted
     percentile. *)
  let m = Metrics.create () in
  let buckets = Array.init 99 (fun i -> float_of_int (i + 1) /. 100.0) in
  let h = Metrics.histogram m ~buckets "test.quant" in
  let rng = Drust_util.Rng.create ~seed:11 in
  let samples = Array.init 2000 (fun _ -> Drust_util.Rng.float rng 1.0) in
  Array.iter (Metrics.observe h) samples;
  let hs = find_histo (Metrics.snapshot m) "test.quant" in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let exact q =
    let n = Array.length sorted in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    sorted.(rank - 1)
  in
  let q_exn h q =
    match Metrics.quantile h q with
    | Some v -> v
    | None -> Alcotest.fail "quantile on non-empty histogram returned None"
  in
  List.iter
    (fun q ->
      let est = q_exn hs q in
      let ex = exact q in
      if Float.abs (est -. ex) > 0.02 then
        Alcotest.failf "q=%.3f: estimate %.4f vs exact %.4f" q est ex)
    [ 0.1; 0.25; 0.5; 0.9; 0.95; 0.99; 0.999 ];
  (* Monotone in q, and clamped to the observed range. *)
  let p50 = q_exn hs 0.5 and p95 = q_exn hs 0.95 and p99 = q_exn hs 0.99 in
  Alcotest.(check bool) "p50 <= p95 <= p99" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "within [min,max]" true
    (q_exn hs 0.0 >= hs.Metrics.h_min && q_exn hs 1.0 <= hs.Metrics.h_max);
  (* Degenerate inputs. *)
  ignore (Metrics.histogram m ~buckets "test.quant_empty");
  let empty = find_histo (Metrics.snapshot m) "test.quant_empty" in
  Alcotest.(check bool) "empty -> None" true
    (Metrics.quantile empty 0.5 = None);
  Alcotest.(check bool) "q outside [0,1] raises" true
    (try
       ignore (Metrics.quantile hs 1.5);
       false
     with Invalid_argument _ -> true)

let check_same_histo msg (a : Metrics.histo) (b : Metrics.histo) =
  Alcotest.(check int) (msg ^ ": count") a.Metrics.h_count b.Metrics.h_count;
  Alcotest.(check (float 1e-9)) (msg ^ ": sum") a.Metrics.h_sum b.Metrics.h_sum;
  Alcotest.(check (list int))
    (msg ^ ": bucket counts")
    (List.map snd a.Metrics.h_buckets)
    (List.map snd b.Metrics.h_buckets);
  Alcotest.(check (float 1e-9)) (msg ^ ": min") a.Metrics.h_min b.Metrics.h_min;
  Alcotest.(check (float 1e-9)) (msg ^ ": max") a.Metrics.h_max b.Metrics.h_max

let test_merge_histos () =
  let m = Metrics.create () in
  let buckets = [| 1.0; 2.0; 5.0; 10.0 |] in
  let mk part =
    Metrics.histogram m ~buckets ~labels:[ ("part", part) ] "test.merge"
  in
  let h1 = mk "a" and h2 = mk "b" and h3 = mk "c" in
  ignore (mk "empty");
  List.iter (Metrics.observe h1) [ 0.5; 1.5; 3.0 ];
  List.iter (Metrics.observe h2) [ 4.0; 20.0 ];
  List.iter (Metrics.observe h3) [ 0.1; 9.0; 9.5 ];
  let snap = Metrics.snapshot m in
  let get part = find_histo snap ~labels:[ ("part", part) ] "test.merge" in
  let a = get "a" and b = get "b" and c = get "c" and e = get "empty" in
  (* Associative: (a+b)+c = a+(b+c), including min/max and therefore
     every quantile. *)
  let l = Metrics.merge_histos (Metrics.merge_histos a b) c in
  let r = Metrics.merge_histos a (Metrics.merge_histos b c) in
  check_same_histo "associativity" l r;
  Alcotest.(check int) "all samples" 8 l.Metrics.h_count;
  List.iter
    (fun q ->
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "quantile %.2f agrees" q)
        (Metrics.quantile l q) (Metrics.quantile r q))
    [ 0.5; 0.95; 0.99 ];
  (* Commutative on the same pair; empty side is the identity. *)
  check_same_histo "commutativity" (Metrics.merge_histos a b)
    (Metrics.merge_histos b a);
  check_same_histo "empty identity" a (Metrics.merge_histos a e);
  check_same_histo "empty identity (left)" a (Metrics.merge_histos e a);
  (* Differing bounds are a caller bug. *)
  ignore (Metrics.histogram m ~buckets:[| 1.0; 2.0 |] "test.merge_other");
  let other = find_histo (Metrics.snapshot m) "test.merge_other" in
  Alcotest.(check bool) "bound mismatch raises" true
    (try
       ignore (Metrics.merge_histos a other);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Critical-path profiler *)

module Cp = Drust_obs.Critical_path

let test_critical_path_attribution () =
  let now, clock = manual_clock () in
  let t = Span.create ~clock () in
  Span.enable t;
  (* op [0,10]; wire child [2,5]; compute child [6,8] with a queue
     grandchild [6,7].  Self times: op 5, wire 3, compute 1, queue 1. *)
  let root = Span.start t ~track:0 ~category:"protocol" "op" in
  now := 2.0;
  let w = Span.start t ~parent:root ~track:0 ~category:"net.wire" "wire" in
  now := 5.0;
  Span.finish t w;
  now := 6.0;
  let c =
    Span.start t ~parent:root ~track:0 ~category:"cpu.compute" "compute"
  in
  let q = Span.start t ~parent:c ~track:0 ~category:"cpu.queue" "q" in
  now := 7.0;
  Span.finish t q;
  now := 8.0;
  Span.finish t c;
  now := 10.0;
  Span.finish t root;
  match Cp.analyze (Span.events t) with
  | [ p ] ->
      Alcotest.(check string) "root" "op" p.Cp.root.Span.name;
      Alcotest.(check (float 1e-9)) "total" 10.0 p.Cp.total;
      Alcotest.(check int) "subtree size" 4 p.Cp.node_count;
      let seg s = List.assoc s p.Cp.segments in
      Alcotest.(check (float 1e-9)) "protocol self" 5.0 (seg Cp.Protocol);
      Alcotest.(check (float 1e-9)) "wire" 3.0 (seg Cp.Wire);
      Alcotest.(check (float 1e-9)) "compute self" 1.0 (seg Cp.Compute);
      Alcotest.(check (float 1e-9)) "queue" 1.0 (seg Cp.Queue);
      Alcotest.(check (float 1e-9)) "serialize absent" 0.0 (seg Cp.Serialize);
      (* The invariant: segments telescope to the end-to-end total. *)
      Alcotest.(check (float 1e-9)) "segments sum to total" p.Cp.total
        (Cp.segments_sum p)
  | l -> Alcotest.failf "expected 1 path, got %d" (List.length l)

let test_critical_path_top_k_and_report () =
  let now, clock = manual_clock () in
  let t = Span.create ~clock () in
  Span.enable t;
  let short = Span.start t ~track:0 ~category:"protocol" "short_op" in
  now := 1.0;
  Span.finish t short;
  let long_ = Span.start t ~track:0 ~category:"protocol" "long_op" in
  now := 6.0;
  Span.finish t long_;
  let paths = Cp.analyze (Span.events t) in
  Alcotest.(check int) "two roots" 2 (List.length paths);
  (match Cp.top_k 1 paths with
  | [ p ] -> Alcotest.(check string) "longest first" "long_op" p.Cp.root.Span.name
  | l -> Alcotest.failf "expected 1 path, got %d" (List.length l));
  let report = Cp.report ~k:2 (Span.events t) in
  Alcotest.(check bool) "#1 is the longest" true
    (Astring.String.is_prefix ~affix:"#1 long_op" report);
  Alcotest.(check bool) "#2 follows" true
    (Astring.String.is_infix ~affix:"#2 short_op" report)

(* A small cross-node protocol workload on a traced cluster, reduced to
   its critical-path report. *)
let traced_workload_report () =
  let module Cluster = Drust_machine.Cluster in
  let module Params = Drust_machine.Params in
  let module Ctx = Drust_machine.Ctx in
  let module P = Drust_core.Protocol in
  let module Univ = Drust_util.Univ in
  let tag : int Univ.tag = Univ.create_tag ~name:"obs.cp" in
  let cluster = Cluster.create { Params.default with Params.nodes = 2 } in
  let spans = Cluster.spans cluster in
  Span.enable spans;
  ignore
    (Drust_sim.Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         let o = P.create_on ctx ~node:1 ~size:128 (Univ.pack tag 0) in
         for i = 1 to 5 do
           ignore (P.owner_read ctx o);
           P.owner_write ctx o (Univ.pack tag i)
         done;
         P.drop_owner ctx o));
  Cluster.run cluster;
  Cp.report ~k:5 (Span.events spans)

let test_critical_path_jobs_deterministic () =
  let seq = traced_workload_report () in
  Alcotest.(check bool) "report is non-empty" true (String.length seq > 0);
  Alcotest.(check bool) "reports protocol ops" true
    (Astring.String.is_infix ~affix:"[protocol]" seq);
  (* The same workload fanned over a 4-domain pool must render the
     byte-identical report: span ids and flow ids are per-tracer, so
     domain scheduling cannot leak in. *)
  let par =
    Drust_experiments.Parallel.map ~jobs:4
      (fun () -> traced_workload_report ())
      [ (); (); (); () ]
  in
  List.iter (fun r -> Alcotest.(check string) "jobs-4 identical" seq r) par

(* ------------------------------------------------------------------ *)
(* Chrome-trace flow events *)

let count_infix ~affix s =
  let n = String.length affix in
  let rec go acc i =
    if i + n > String.length s then acc
    else if String.sub s i n = affix then go (acc + 1) (i + 1)
    else go acc (i + 1)
  in
  go 0 0

let test_chrome_trace_flow_events () =
  let now, clock = manual_clock () in
  let t = Span.create ~clock () in
  Span.enable t;
  let fid = Span.fresh_flow_id t in
  Span.instant t ~track:0 ~flow_out:[ fid ] ~category:"fabric" "send";
  now := 1.0;
  Span.instant t ~track:1 ~flow_in:[ fid ] ~category:"fabric" "recv";
  (* A flow id with no consumer must not emit a dangling arrow. *)
  let dangling = Span.fresh_flow_id t in
  Span.instant t ~track:0 ~flow_out:[ dangling ] ~category:"fabric" "lost";
  let json = Export.chrome_trace t in
  check_balanced_json json;
  Alcotest.(check int) "one flow start" 1 (count_infix ~affix:{|"ph":"s"|} json);
  Alcotest.(check int) "one flow finish" 1 (count_infix ~affix:{|"ph":"f"|} json);
  Alcotest.(check bool) "binds at enclosing slice end" true
    (Astring.String.is_infix ~affix:{|"bp":"e"|} json);
  Alcotest.(check int) "both arrows in the flow category" 2
    (count_infix ~affix:{|"cat":"flow"|} json)

(* ------------------------------------------------------------------ *)
(* Profiling is strictly observational: fig5 with every cluster traced
   prints byte-identical output to the unprofiled run. *)

let capture_stdout f =
  let tmp = Filename.temp_file "obs_cap" ".out" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close fd
  in
  let r =
    try f ()
    with e ->
      restore ();
      Sys.remove tmp;
      raise e
  in
  restore ();
  let ic = open_in_bin tmp in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  (r, s)

let test_profiled_fig5_bit_identical () =
  let module Fig5 = Drust_experiments.Fig5 in
  let module Cluster = Drust_machine.Cluster in
  let (), plain =
    capture_stdout (fun () -> ignore (Fig5.run ~node_counts:[ 1; 2 ] ()))
  in
  Cluster.set_create_hook (Some (fun c -> Span.enable (Cluster.spans c)));
  let (), profiled =
    Fun.protect
      ~finally:(fun () -> Cluster.set_create_hook None)
      (fun () ->
        capture_stdout (fun () -> ignore (Fig5.run ~node_counts:[ 1; 2 ] ())))
  in
  if not (String.equal plain profiled) then begin
    let n = min (String.length plain) (String.length profiled) in
    let i = ref 0 in
    while !i < n && plain.[!i] = profiled.[!i] do
      incr i
    done;
    Alcotest.failf
      "profiled fig5 stdout diverges at byte %d (lengths %d vs %d): %S vs %S"
      !i (String.length plain) (String.length profiled)
      (String.sub plain !i (min 60 (String.length plain - !i)))
      (String.sub profiled !i (min 60 (String.length profiled - !i)))
  end

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter roundtrip" `Quick test_counter_roundtrip;
          Alcotest.test_case "get-or-create shares" `Quick
            test_get_or_create_shares_handles;
          Alcotest.test_case "labels normalized" `Quick test_labels_normalized;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_rejected;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_registry_records_nothing;
          Alcotest.test_case "histogram bucketing" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "snapshot + diff" `Quick
            test_snapshot_sorted_and_diff;
          Alcotest.test_case "names" `Quick test_names_sorted_distinct;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled by default" `Quick
            test_span_disabled_by_default;
          Alcotest.test_case "durations + nesting" `Quick
            test_span_durations_and_nesting;
          Alcotest.test_case "ring overwrites" `Quick test_span_ring_overwrites;
          Alcotest.test_case "with_span exception-safe" `Quick
            test_with_span_exception_safe;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
          Alcotest.test_case "metrics jsonl shape" `Quick
            test_metrics_jsonl_shape;
          Alcotest.test_case "metrics jsonl roundtrip" `Quick
            test_metrics_jsonl_roundtrip;
          Alcotest.test_case "chrome thread metadata" `Quick
            test_chrome_trace_thread_metadata;
          Alcotest.test_case "json escape" `Quick test_json_escape;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "estimate accuracy" `Quick test_quantile_accuracy;
          Alcotest.test_case "merge histograms" `Quick test_merge_histos;
        ] );
      ( "critical-path",
        [
          Alcotest.test_case "segment attribution" `Quick
            test_critical_path_attribution;
          Alcotest.test_case "top-k + report" `Quick
            test_critical_path_top_k_and_report;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_critical_path_jobs_deterministic;
        ] );
      ( "flow",
        [
          Alcotest.test_case "chrome flow arrows" `Quick
            test_chrome_trace_flow_events;
        ] );
      ( "integration",
        [
          Alcotest.test_case "traced cluster run" `Quick
            test_cluster_trace_integration;
          Alcotest.test_case "profiled fig5 bit-identical" `Quick
            test_profiled_fig5_bit_identical;
        ] );
    ]
