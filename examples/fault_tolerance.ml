(* Fault tolerance (S4.2.3), end to end and fully automatic: replicate
   the global heap, batch write-backs until ownership escapes, then crash
   a primary through the fault plan — nobody calls [fail_and_promote].
   The controller's heartbeat detector notices the missed probes,
   promotes the backup, and a retried read comes back with the committed
   value.  The whole sequence runs under the DSan shadow-state sanitizer
   (docs/SANITIZER.md), which cross-checks every coherence transition of
   the crash/promotion path.

   Run with:  dune exec examples/fault_tolerance.exe *)

module Engine = Drust_sim.Engine
module Fault = Drust_sim.Fault
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module Fabric = Drust_net.Fabric
module P = Drust_core.Protocol
module Replication = Drust_runtime.Replication
module Controller = Drust_runtime.Controller
module Dthread = Drust_runtime.Dthread
module Rng = Drust_util.Rng
module Univ = Drust_util.Univ
module Gaddr = Drust_memory.Gaddr
module Dsan = Drust_check.Dsan

let tag : string Univ.tag = Univ.create_tag ~name:"ft.doc"

let () =
  let cluster = Cluster.create { Params.default with Params.nodes = 4 } in
  let dsan = Dsan.attach cluster in
  let engine = Cluster.engine cluster in
  let fabric = Cluster.fabric cluster in
  let plan = Fault.create ~engine ~rng:(Rng.create ~seed:7) ~nodes:4 () in
  Fabric.set_fault_plan fabric plan;
  ignore
    (Engine.spawn engine (fun () ->
         let ctx = Ctx.make cluster ~node:0 in
         let doc = P.create_on ctx ~node:1 ~size:256 (Univ.pack tag "v1") in
         Printf.printf "doc lives on node %d\n" (Gaddr.node_of (P.gaddr doc));

         let repl = Replication.enable cluster in
         Printf.printf "replication on: node 1's backup is node %d\n"
           (Replication.backup_node repl 1);

         (* The heartbeat failure detector rides on the controller's
            probe loop; handing it the replication manager is all it
            takes to make promotion automatic. *)
         let ctrl =
           Controller.start ~probe_interval:0.5e-3 ~probe_timeout:2e-4
             ~miss_threshold:3 ~replication:repl cluster
         in
         let detected = ref false in
         Controller.set_on_death ctrl (fun n ->
             Printf.printf "detector: node %d declared dead, promoting\n" n;
             detected := true);

         (* A writer thread on node 1 commits v2 and hands the document
            away — the transfer flushes the batched backup write-back. *)
         let writer =
           Dthread.spawn_on ctx ~node:1 (fun w ->
               let m = P.borrow_mut w doc in
               P.mut_write w m (Univ.pack tag "v2");
               P.drop_mut w m;
               Printf.printf "writer committed v2 (pending write-backs: %d)\n"
                 (Replication.pending_writes repl);
               P.transfer w doc ~to_node:2;
               Printf.printf "ownership escaped   (pending write-backs: %d)\n"
                 (Replication.pending_writes repl))
         in
         Dthread.join ctx writer;

         (* Crash whichever node now hosts the object.  This only injects
            the fault: from here on, detection and promotion happen with
            zero application involvement. *)
         let victim = Cluster.serving_node cluster (Gaddr.node_of (P.gaddr doc)) in
         Printf.printf "crashing node %d...\n" victim;
         Fault.crash_at plan ~node:victim ~at:(Engine.now engine);

         while not !detected do
           Engine.delay engine 0.5e-3
         done;
         Printf.printf "promoted: node %d's range now served by node %d\n"
           victim
           (Cluster.serving_node cluster victim);

         (* Reads during the detection window would raise [Node_down];
            bounded retries carry the client across the failover. *)
         let v =
           Fabric.retry_with_backoff fabric ~from:ctx.Ctx.node (fun () ->
               Univ.unpack_exn tag (P.owner_read ctx doc))
         in
         Printf.printf "read after failover: %S (expected \"v2\")\n" v;
         assert (v = "v2");
         Controller.stop ctrl;
         Replication.disable repl));
  Cluster.run cluster;
  (match Dsan.violations dsan with
  | [] ->
      Printf.printf "sanitizer: zero invariant violations across the failover\n"
  | rs ->
      List.iter (fun r -> prerr_endline (Dsan.report_to_string r)) rs;
      assert false);
  Dsan.detach dsan
