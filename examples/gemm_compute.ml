(* Distributed GEMM: blocked matrix multiply over the shared heap,
   comparing the three DSMs on the same cluster.  The story: high reuse of
   cached sub-matrices lets DRust (and GAM) scale; Grappa re-delegates
   every touch and falls behind.

   Run with:  dune exec examples/gemm_compute.exe

   Set DRUST_TRACE=1 (or =<prefix>) to trace the DRust run and export a
   Chrome trace_event JSON (load in ui.perfetto.dev) plus a JSONL
   metrics dump -- see docs/OBSERVABILITY.md. *)

module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Appkit = Drust_appkit.Appkit
module Gm = Drust_gemm.Gemm
module B = Drust_experiments.Bench_setup

let config =
  {
    Gm.default_config with
    Gm.grid = 8;
    block_bytes = Drust_util.Units.kib 64;
    strips = 64;
  }

let flops r =
  (* Each block-pair op is ~2 * b^3 flops with b = sqrt(block/8). *)
  let b = Float.sqrt (Float.of_int config.Gm.block_bytes /. 8.0) in
  r *. 2.0 *. (b ** 3.0)

let trace_prefix =
  match Sys.getenv_opt "DRUST_TRACE" with
  | Some p when p <> "" && p <> "0" ->
      Some (if p = "1" then "gemm-compute" else p)
  | _ -> None

let () =
  Printf.printf "GEMM: %dx%d blocks of %s, 4 nodes\n\n" config.Gm.grid
    config.Gm.grid
    (Format.asprintf "%a" Drust_util.Units.pp_bytes config.Gm.block_bytes);
  List.iter
    (fun system ->
      let cluster = Cluster.create { Params.default with Params.nodes = 4 } in
      (* Tracing is observational only: enabling it does not change the
         simulated numbers. *)
      if system = B.Drust && trace_prefix <> None then
        Drust_obs.Span.enable (Cluster.spans cluster);
      let backend = B.make_backend system cluster in
      let r = Gm.run ~cluster ~backend config in
      Printf.printf "%-8s %8.0f block-pair ops/s  (~%.2f simulated GFLOP/s)\n"
        (B.system_name system) r.Appkit.throughput
        (flops r.Appkit.throughput /. 1e9);
      match (system, trace_prefix) with
      | B.Drust, Some prefix ->
          let spans = Cluster.spans cluster in
          Drust_obs.Export.write_chrome_trace ~path:(prefix ^ ".trace.json")
            spans;
          Drust_obs.Export.write_metrics_jsonl ~time:(Cluster.now cluster)
            ~path:(prefix ^ ".metrics.jsonl")
            (Drust_obs.Metrics.snapshot (Cluster.metrics cluster));
          Printf.printf
            "         traced: %d events -> %s.trace.json, metrics -> \
             %s.metrics.jsonl\n"
            (Drust_obs.Span.count spans) prefix prefix
      | _ -> ())
    [ B.Drust; B.Gam; B.Grappa ]
