(* Watch the coherence protocol on the wire: enable the cluster's span
   tracer and replay a small ownership story — create, remote read
   (one-sided READ), local write (color bump: silence!), remote write
   (move + owner write-back), and a TBox group fetch.

   Run with:  dune exec examples/protocol_trace.exe *)

module Engine = Drust_sim.Engine
module Span = Drust_obs.Span
module Cluster = Drust_machine.Cluster
module Params = Drust_machine.Params
module Ctx = Drust_machine.Ctx
module P = Drust_core.Protocol
module Univ = Drust_util.Univ

let tag : int Univ.tag = Univ.create_tag ~name:"trace.int"

let pp_event (e : Span.event) =
  let args =
    match e.Span.args with
    | [] -> ""
    | kvs ->
        " ("
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ ")"
  in
  Printf.printf "  [%-10s] node %d  %s%s\n" e.Span.category e.Span.track
    e.Span.name args

let step spans name f =
  Printf.printf "\n--- %s ---\n" name;
  let before = Span.count spans in
  f ();
  if Span.count spans = before then
    print_endline "  (no traffic — the point of the protocol)"
  else
    List.iteri (fun i e -> if i >= before then pp_event e) (Span.events spans)

let () =
  let cluster = Cluster.create { Params.default with Params.nodes = 4 } in
  let spans = Cluster.spans cluster in
  Span.enable spans;
  ignore
    (Engine.spawn (Cluster.engine cluster) (fun () ->
         let ctx0 = Ctx.make cluster ~node:0 in
         let ctx2 = Ctx.make cluster ~node:2 in

         let o = ref None in
         step spans "create on node 0 (local: silent)" (fun () ->
             o := Some (P.create ctx0 ~size:256 (Univ.pack tag 1)));
         let o = Option.get !o in

         step spans "remote read from node 2 (one one-sided READ)" (fun () ->
             let r = P.borrow_imm ctx2 o in
             ignore (P.imm_deref ctx2 r);
             P.drop_imm ctx2 r);

         step spans "second remote read (cache hit: silent)" (fun () ->
             let r = P.borrow_imm ctx2 o in
             ignore (P.imm_deref ctx2 r);
             P.drop_imm ctx2 r);

         step spans "local write on node 0 (color bump: one BUMP mark)"
           (fun () -> P.owner_write ctx0 o (Univ.pack tag 2));

         step spans
           "remote write from node 2 (move + async dealloc + owner update)"
           (fun () ->
             let m = P.borrow_mut ctx2 o in
             P.mut_write ctx2 m (Univ.pack tag 3);
             P.drop_mut ctx2 m);

         step spans "TBox group: tie two children, fetch all in one READ"
           (fun () ->
             let p = P.create_on ctx0 ~node:0 ~size:128 (Univ.pack tag 10) in
             let c1 = P.create_on ctx0 ~node:0 ~size:128 (Univ.pack tag 11) in
             let c2 = P.create_on ctx0 ~node:0 ~size:128 (Univ.pack tag 12) in
             P.tie ctx0 ~parent:p ~child:c1;
             P.tie ctx0 ~parent:c1 ~child:c2;
             let r = P.borrow_imm ctx2 p in
             ignore (P.imm_deref ctx2 r);
             P.drop_imm ctx2 r);

         Printf.printf "\n%d trace events total; final value lives on node %d\n"
           (Span.count spans)
           (Drust_memory.Gaddr.node_of (P.gaddr o))));
  Cluster.run cluster
