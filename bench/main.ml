(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (DRust, OSDI'24) from the simulator, and runs Bechamel
   microbenchmarks of the hot protocol paths.

   Usage:
     dune exec bench/main.exe                        # everything
     dune exec bench/main.exe -- fig5 table2         # selected experiments
     dune exec bench/main.exe -- fig5 --out results  # + CSV files
     dune exec bench/main.exe -- fig5 --jobs 4       # parallel sweep pool
     dune exec bench/main.exe -- fig5 --emit-plan p.json   # + plan artifact
     dune exec bench/main.exe -- --plan p.json       # replay a suite plan
     dune exec bench/main.exe -- fuzz --fuzz-count 25 --fuzz-seed 1

   --jobs N fans independent experiment configurations out over N
   domains (default 1); output is byte-identical for every N (see
   docs/BENCHMARKS.md).

   Experiments: motivation fig5 fig6 fig7 table1 table2 migration
                ablation traffic ycsb latency failover churn trace
                profile micro fuzz

   The plan-replayable experiments dispatch through
   Drust_experiments.Runner — the same table --plan replay uses, which
   is what makes a replayed run byte-identical to the direct one (see
   docs/SIMPLAN.md).  trace/profile/micro are host-side diagnostics and
   stay CLI-only; fuzz is the seeded SimPlan fuzzer (Drust_plan.Fuzz).

   --churn-nodes N sets the churn experiment's cluster size (default
   64; the @churn CI alias runs it at 16).

   --host-time records each gated experiment's host wall-clock cost as
   a host_ms field in BENCH_summary.json (schema v3), which @bench-diff
   gates with a loose tolerance; off by default so plain summaries stay
   machine-independent and byte-identical across --jobs values.

   The [trace] experiment re-runs GEMM on DRust with the span tracer
   enabled and writes a Chrome trace_event JSON (Perfetto-loadable) plus
   a JSONL metrics dump; set DRUST_TRACE=<prefix> to choose the output
   path prefix (default "drust-trace").  The [profile] experiment runs
   the same traced workload through the critical-path profiler: a
   per-segment time breakdown, the top-10 critical paths, and a Chrome
   trace with cross-node flow arrows (prefix default "drust-profile"). *)

module E = Drust_experiments
module Simplan = Drust_plan.Simplan
module Fuzz = Drust_plan.Fuzz
module Flight = Drust_obs.Flight

(* ------------------------------------------------------------------ *)
(* Trace output resolution: --trace-out PATH is the one spelling shared
   with bin/drust_sim.exe; the DRUST_TRACE environment variable stays as
   a legacy alias.  Both name a path prefix (a trailing .trace.json or
   .json is stripped), and naming both with different values is a usage
   error. *)

let trace_out = ref None

let env_trace () =
  match Sys.getenv_opt "DRUST_TRACE" with
  | Some p when p <> "" && p <> "0" && p <> "1" -> Some p
  | _ -> None

let trace_prefix ~default =
  match !trace_out with
  | Some p -> p
  | None -> ( match env_trace () with Some p -> p | None -> default)

(* ------------------------------------------------------------------ *)
(* Observability demo: one traced run, exported for Perfetto.          *)

let run_trace () =
  let module B = E.Bench_setup in
  let module Cluster = Drust_machine.Cluster in
  let module Metrics = Drust_obs.Metrics in
  let module Span = Drust_obs.Span in
  E.Report.section "Observability: traced GEMM on DRust (4 nodes)";
  let prefix = trace_prefix ~default:"drust-trace" in
  let params = B.testbed ~nodes:4 () in
  let cluster = Cluster.create params in
  let spans = Cluster.spans cluster in
  Span.enable spans;
  let before = Metrics.snapshot (Cluster.metrics cluster) in
  let backend = B.make_backend B.Drust cluster in
  let r =
    Drust_gemm.Gemm.run ~cluster ~backend Drust_gemm.Gemm.default_config
  in
  let after = Metrics.snapshot (Cluster.metrics cluster) in
  E.Report.note
    (Printf.sprintf "GEMM: %.0f ops in %.6f virtual s"
       r.Drust_appkit.Appkit.ops r.Drust_appkit.Appkit.elapsed);
  E.Report.metrics_table (Metrics.diff ~before ~after);
  List.iter
    (fun (cat, st) ->
      E.Report.note
        (Printf.sprintf "spans[%-10s] %6d complete, %.6f virtual s total" cat
           st.Span.d_count st.Span.d_total))
    (Span.duration_stats spans);
  let trace_path = prefix ^ ".trace.json" in
  let metrics_path = prefix ^ ".metrics.jsonl" in
  Drust_obs.Export.write_chrome_trace ~path:trace_path spans;
  Drust_obs.Export.write_metrics_jsonl ~time:(Cluster.now cluster)
    ~path:metrics_path after;
  E.Report.note
    (Printf.sprintf "%d trace events -> %s (load in ui.perfetto.dev)"
       (Span.count spans) trace_path);
  E.Report.note (Printf.sprintf "metrics snapshot -> %s" metrics_path)

(* ------------------------------------------------------------------ *)
(* Critical-path profile: traced GEMM, causally assembled.             *)

let run_profile () =
  let module B = E.Bench_setup in
  let module Cluster = Drust_machine.Cluster in
  let module Span = Drust_obs.Span in
  let module Cp = Drust_obs.Critical_path in
  E.Report.section "Profile: critical paths of traced GEMM on DRust (4 nodes)";
  let prefix = trace_prefix ~default:"drust-profile" in
  let params = B.testbed ~nodes:4 () in
  let cluster = Cluster.create params in
  let spans = Cluster.spans cluster in
  Span.enable spans;
  let backend = B.make_backend B.Drust cluster in
  let r =
    Drust_gemm.Gemm.run ~cluster ~backend Drust_gemm.Gemm.default_config
  in
  E.Report.note
    (Printf.sprintf "GEMM: %.0f ops in %.6f virtual s"
       r.Drust_appkit.Appkit.ops r.Drust_appkit.Appkit.elapsed);
  let events = Span.events spans in
  let paths = Cp.analyze events in
  (* Where did the virtual time go, across every profiled operation? *)
  let totals =
    List.map
      (fun seg ->
        ( seg,
          List.fold_left
            (fun acc p -> acc +. List.assoc seg p.Cp.segments)
            0.0 paths ))
      Cp.all_segments
  in
  let grand = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 totals in
  E.Report.table
    ~header:[ "segment"; "total (us)"; "share" ]
    ~rows:
      (List.map
         (fun (seg, d) ->
           [
             Cp.segment_name seg;
             Printf.sprintf "%.3f" (d *. 1e6);
             (if grand > 0.0 then E.Report.cell_pct (d /. grand) else "-");
           ])
         totals);
  E.Report.note
    (Printf.sprintf "%d operation(s) profiled; top critical paths:"
       (List.length paths));
  print_string (Cp.report ~k:10 events);
  let trace_path = prefix ^ ".trace.json" in
  Drust_obs.Export.write_chrome_trace ~path:trace_path spans;
  E.Report.note
    (Printf.sprintf
       "%d trace events (with cross-node flow arrows) -> %s (load in \
        ui.perfetto.dev)"
       (Span.count spans) trace_path);
  (* Host engine throughput: dispatched events per wall-clock second,
     untraced (the zero-allocation fast path) and traced.  Wall-clock
     numbers are machine-dependent, so they go to stderr — stdout must
     stay byte-identical across machines and runs (docs/PERFORMANCE.md
     explains how to read these). *)
  Printf.eprintf "host engine throughput (wall-clock, machine-dependent):\n";
  let host_measure ~label ~traced =
    let cluster = Cluster.create (B.testbed ~nodes:4 ()) in
    if traced then Span.enable (Cluster.spans cluster);
    let backend = B.make_backend B.Drust cluster in
    let t0 =
      (Unix.gettimeofday ()
      [@dlint.allow
        "determinism: the profile host section is explicitly wall-clock \
         and machine-dependent; it prints to stderr only"])
    in
    ignore
      (Drust_gemm.Gemm.run ~cluster ~backend Drust_gemm.Gemm.default_config);
    let dt =
      (Unix.gettimeofday () -. t0
      [@dlint.allow
        "determinism: the profile host section is explicitly wall-clock \
         and machine-dependent; it prints to stderr only"])
    in
    let n = Drust_sim.Engine.dispatched (Cluster.engine cluster) in
    Printf.eprintf "  %-18s %9d events in %6.3f s = %.3g events/s\n" label n dt
      (float_of_int n /. dt);
    (n, dt)
  in
  let n_untraced, dt_untraced =
    host_measure ~label:"gemm/4n untraced" ~traced:false
  in
  ignore (host_measure ~label:"gemm/4n traced" ~traced:true);
  (* Headline summary entry: the deterministic virtual-time rate, plus —
     under --host-time only — the untraced engine throughput in events
     per host second, so @bench-diff gates engine performance with the
     loose host tolerance (docs/PERFORMANCE.md). *)
  E.Report.record_rate
    ~host_ms:(dt_untraced *. 1000.0)
    ~host_rate:(float_of_int n_untraced /. dt_untraced)
    ~experiment:"profile/gemm" ~ops:r.Drust_appkit.Appkit.ops
    ~elapsed:r.Drust_appkit.Appkit.elapsed ()

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: wall-clock cost of the hot OCaml paths
   behind each experiment — one Test.make per table/figure family.     *)

let bechamel_tests () =
  let open Bechamel in
  let rng = Drust_util.Rng.create ~seed:7 in
  let deref_model =
    Test.make ~name:"table2:deref-cost-model" (Staged.stage (fun () ->
        ignore (Drust_core.Deref_cost.sample rng Drust_core.Deref_cost.Drust_box)))
  in
  let gaddr_ops =
    Test.make ~name:"protocol:gaddr-color-ops" (Staged.stage (fun () ->
        let g = Drust_memory.Gaddr.make ~node:3 ~offset:4096 in
        let g = Drust_memory.Gaddr.with_color g 7 in
        ignore (Drust_memory.Gaddr.clear_color (Drust_memory.Gaddr.bump_color g))))
  in
  let cache_ops =
    let cache = Drust_memory.Cache.create ~node:0 () in
    let tag : int Drust_util.Univ.tag = Drust_util.Univ.create_tag ~name:"b" in
    let g = Drust_memory.Gaddr.make ~node:1 ~offset:64 in
    let copy = Drust_memory.Cache.insert cache g ~size:64 (Drust_util.Univ.pack tag 1) in
    ignore copy;
    Test.make ~name:"fig5:cache-lookup" (Staged.stage (fun () ->
        ignore (Drust_memory.Cache.lookup cache g)))
  in
  let engine_event =
    Test.make ~name:"sim:schedule-and-step" (Staged.stage (fun () ->
        let e = Drust_sim.Engine.create () in
        Drust_sim.Engine.schedule e ~at:1.0 (fun () -> ());
        ignore (Drust_sim.Engine.step e)))
  in
  let protocol_epoch =
    Test.make ~name:"fig6:protocol-local-write-epoch" (Staged.stage (fun () ->
        let params =
          { Drust_machine.Params.default with Drust_machine.Params.nodes = 1 }
        in
        let cluster = Drust_machine.Cluster.create params in
        ignore
          (Drust_sim.Engine.spawn
             (Drust_machine.Cluster.engine cluster)
             (fun () ->
               let ctx = Drust_machine.Ctx.make cluster ~node:0 in
               let o =
                 Drust_core.Protocol.create ctx ~size:64
                   (Drust_util.Univ.pack
                      (Drust_util.Univ.create_tag ~name:"x")
                      0)
               in
               Drust_core.Protocol.owner_write ctx o
                 (Drust_util.Univ.pack (Drust_util.Univ.create_tag ~name:"y") 1)));
        Drust_machine.Cluster.run cluster))
  in
  Test.make_grouped ~name:"drust"
    [ deref_model; gaddr_ops; cache_ops; engine_event; protocol_epoch ]

let run_micro () =
  print_newline ();
  print_endline "=== Bechamel microbenchmarks (host wall-clock) ===";
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  (* Simple per-test mean report (avoids the notty TTY renderer, which
     does not work when output is piped to a file). *)
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  (* Name-sorted, not bucket-ordered: the report is part of stdout. *)
  Drust_util.Tables.sorted_bindings results ~cmp:String.compare
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Printf.printf "  %-40s %10.1f ns/run\n" name est
         | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)

(* CLI-only diagnostics: host-side, not described by a suite plan. *)
let local_experiments =
  [ ("trace", run_trace); ("profile", run_profile); ("micro", run_micro) ]

let all_names = E.Runner.names @ List.map fst local_experiments @ [ "fuzz" ]

(* ------------------------------------------------------------------ *)
(* Post-mortem forensics: reconstruct timelines from a *.flight.json
   dump alone — no re-run, no plan, no cluster (docs/FORENSICS.md).    *)

let run_forensics ~object_ path =
  let d =
    match Flight.load ~path with
    | Ok d -> d
    | Error e ->
        Printf.eprintf "bench: forensics: %s\n" e;
        exit 2
  in
  Printf.printf "=== flight dump: %s ===\n" d.Flight.dm_label;
  Printf.printf "reason: %s\n" d.Flight.dm_reason;
  Printf.printf "nodes: %d  ring: %d events/node  t=%.9f\n" d.Flight.dm_nodes
    d.Flight.dm_ring d.Flight.dm_time;
  let addr = match object_ with Some a -> Some a | None -> d.Flight.dm_object in
  (match addr with
  | Some a ->
      Printf.printf "\n--- object timeline: 0x%x ---\n" a;
      let lines = Flight.explain_object ~object_:a d.Flight.dm_events in
      if lines = [] then
        print_endline "(no events about this object in the retained rings)"
      else List.iter print_endline lines
  | None ->
      print_endline "(no offending object recorded; pass --object ADDR)");
  for node = 0 to d.Flight.dm_nodes - 1 do
    let lines = Flight.render_last d.Flight.dm_events ~node in
    if lines <> [] then begin
      Printf.printf "\n--- node %d: last %d event(s) before the dump ---\n"
        node (List.length lines);
      List.iter print_endline lines
    end
  done

(* ------------------------------------------------------------------ *)
(* Seeded SimPlan fuzzing: sample valid plans, execute each under a
   local sanitizer, greedily shrink any failure to a minimal plan.     *)

let run_fuzz ~count ~seed ~max_nodes ~out_dir () =
  E.Report.section
    (Printf.sprintf "Fuzz: %d seeded SimPlans (seed %d, <= %d nodes)" count
       seed max_nodes);
  (* Route flight auto-dumps (from oracle runs and shrink probes alike)
     next to the plan artifacts. *)
  let dump_dir =
    match out_dir with Some d -> d | None -> Filename.current_dir_name
  in
  Flight.set_dump_dir (Some dump_dir);
  let plans = Fuzz.plans ~seed ~count ~max_nodes in
  (* Oracle fan-out is the expensive phase; each plan executes on its
     own cluster with its own local sanitizer, so the verdicts are
     independent and Parallel.map keeps their order — stdout below is
     byte-identical for every --jobs value. *)
  let verdicts = E.Parallel.map Fuzz.default_oracle plans in
  let failures =
    List.filter
      (fun (_, v) -> Fuzz.is_failure v)
      (List.combine plans verdicts)
  in
  E.Report.note
    (Printf.sprintf "%d/%d plans passed the sanitized oracle"
       (count - List.length failures)
       count);
  (* Shrinking is sequential: each step's candidate choice depends on
     the previous verdict, and failures should be rare. *)
  let dir = dump_dir in
  List.iteri
    (fun i ((plan : Simplan.t), verdict) ->
      let shrunk, shrunk_verdict = Fuzz.shrink ~oracle:Fuzz.default_oracle plan in
      E.Report.note
        (Printf.sprintf "FAIL %d: %s — %s" i plan.Simplan.name
           (Fuzz.verdict_to_string verdict));
      E.Report.note
        (Printf.sprintf "  shrunk to %s — %s" shrunk.Simplan.name
           (Fuzz.verdict_to_string shrunk_verdict));
      let path name suffix =
        Filename.concat dir (name ^ suffix ^ ".plan.json")
      in
      Simplan.save ~path:(path plan.Simplan.name "") plan;
      Simplan.save ~path:(path plan.Simplan.name ".shrunk") shrunk;
      (* One sanitized re-execution of the minimal repro, relabeled so
         its auto-dump lands as <name>.shrunk.flight.json — the forensic
         twin of <name>.shrunk.plan.json.  The failure is expected; both
         DSan violations and crashes write the dump before we get here. *)
      let relabeled =
        { shrunk with Simplan.name = shrunk.Simplan.name ^ ".shrunk" }
      in
      (try ignore (Simplan.execute ~sanitize:true relabeled)
       with _ -> ());
      let dump = Filename.concat dir (relabeled.Simplan.name ^ ".flight.json") in
      Printf.eprintf "[fuzz] failing plan -> %s (minimal: %s%s)\n%!"
        (path plan.Simplan.name "")
        (path plan.Simplan.name ".shrunk")
        (if Sys.file_exists dump then ", flight dump: " ^ dump else ""))
    failures;
  if failures <> [] then begin
    Printf.eprintf "fuzz: %d failing plan(s); minimal repros written\n"
      (List.length failures);
    exit 4
  end

(* ------------------------------------------------------------------ *)

let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench: %s\n" msg;
      Printf.eprintf "experiments: %s\n" (String.concat " " all_names);
      Printf.eprintf "commands: forensics DUMP.flight.json [--object ADDR]\n";
      Printf.eprintf
        "flags: --out DIR | --jobs N | --sanitize | --host-time | \
         --churn-nodes N | --trace-out PATH | --plan FILE | --emit-plan FILE \
         | --fuzz-count N | --fuzz-seed N | --fuzz-max-nodes N\n";
      exit 2)
    fmt

(* The plan name baked into an --emit-plan artifact: the file stem. *)
let plan_name_of_path path =
  let base = Filename.basename path in
  let base =
    match Filename.chop_suffix_opt ~suffix:".json" base with
    | Some b -> b
    | None -> base
  in
  let base =
    match Filename.chop_suffix_opt ~suffix:".plan" base with
    | Some b -> b
    | None -> base
  in
  if base = "" then "suite" else base

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let out_dir = ref None in
  let sanitize = ref false in
  let churn_nodes = ref None in
  let plan_file = ref None in
  let emit_plan = ref None in
  let fuzz_count = ref 25 in
  let fuzz_seed = ref 1 in
  let fuzz_max_nodes = ref 16 in
  let object_addr = ref None in
  let int_flag flag v ~ok ~expects k =
    match int_of_string_opt v with
    | Some n when ok n -> k n
    | _ -> usage_error "%s expects %s" flag expects
  in
  let rec split_args acc = function
    | "--out" :: dir :: rest ->
        out_dir := Some dir;
        E.Report.set_csv_dir (Some dir);
        split_args acc rest
    | "--sanitize" :: rest ->
        sanitize := true;
        split_args acc rest
    | "--jobs" :: n :: rest ->
        int_flag "--jobs" n ~ok:(fun j -> j >= 1) ~expects:"a positive integer"
          E.Parallel.set_default_jobs;
        split_args acc rest
    | "--host-time" :: rest ->
        E.Report.set_host_time_recording true;
        split_args acc rest
    | "--churn-nodes" :: n :: rest ->
        int_flag "--churn-nodes" n
          ~ok:(fun c -> c >= 16)
          ~expects:"an integer >= 16"
          (fun c -> churn_nodes := Some c);
        split_args acc rest
    | "--trace-out" :: path :: rest ->
        let strip s suffix =
          match Filename.chop_suffix_opt ~suffix s with
          | Some b -> b
          | None -> s
        in
        let prefix = strip (strip path ".trace.json") ".json" in
        if prefix = "" then usage_error "--trace-out expects a non-empty path";
        (match env_trace () with
        | Some env when env <> prefix && env <> path ->
            usage_error "--trace-out %s conflicts with DRUST_TRACE=%s" path env
        | _ -> ());
        (match !trace_out with
        | Some p when p <> prefix ->
            usage_error "--trace-out named twice with different paths"
        | _ -> ());
        trace_out := Some prefix;
        split_args acc rest
    | "--object" :: a :: rest ->
        (match int_of_string_opt a with
        | Some v -> object_addr := Some v
        | None ->
            usage_error "--object expects an address (decimal or 0x... hex)");
        split_args acc rest
    | "--plan" :: file :: rest ->
        plan_file := Some file;
        split_args acc rest
    | "--emit-plan" :: file :: rest ->
        emit_plan := Some file;
        split_args acc rest
    | "--fuzz-count" :: n :: rest ->
        int_flag "--fuzz-count" n
          ~ok:(fun c -> c >= 1)
          ~expects:"a positive integer"
          (fun c -> fuzz_count := c);
        split_args acc rest
    | "--fuzz-seed" :: n :: rest ->
        int_flag "--fuzz-seed" n ~ok:(fun _ -> true) ~expects:"an integer"
          (fun s -> fuzz_seed := s);
        split_args acc rest
    | "--fuzz-max-nodes" :: n :: rest ->
        int_flag "--fuzz-max-nodes" n
          ~ok:(fun c -> c >= 4)
          ~expects:"an integer >= 4"
          (fun c -> fuzz_max_nodes := c);
        split_args acc rest
    | [ (("--out" | "--jobs" | "--churn-nodes" | "--trace-out" | "--object"
         | "--plan" | "--emit-plan" | "--fuzz-count" | "--fuzz-seed"
         | "--fuzz-max-nodes") as flag) ] ->
        usage_error "%s expects an argument" flag
    | x :: _ when String.length x >= 2 && String.sub x 0 2 = "--" ->
        usage_error "unknown flag %s" x
    | x :: rest -> split_args (x :: acc) rest
    | [] -> List.rev acc
  in
  let positional = split_args [] args in
  (* The forensics command reads a dump and exits — no experiments, no
     summary, no cluster. *)
  (match positional with
  | "forensics" :: rest ->
      (match rest with
      | [ dump ] ->
          run_forensics ~object_:!object_addr dump;
          exit 0
      | [] -> usage_error "forensics expects a *.flight.json dump path"
      | _ -> usage_error "forensics takes exactly one dump path")
  | _ ->
      if !object_addr <> None then
        usage_error "--object only applies to the forensics command");
  (* Validate everything up front — nothing runs on a bad invocation. *)
  List.iter
    (fun name ->
      if not (List.mem name all_names) then
        usage_error "unknown experiment %S" name)
    positional;
  let fuzzing = List.mem "fuzz" positional in
  if fuzzing && List.length positional > 1 then
    usage_error "fuzz runs alone; drop the other experiment names";
  if fuzzing && (!plan_file <> None || !emit_plan <> None) then
    usage_error "fuzz does not combine with --plan/--emit-plan";
  if !plan_file <> None && positional <> [] then
    usage_error "--plan replays the plan's own experiment list; drop %S"
      (List.hd positional);
  if !plan_file <> None && !emit_plan <> None then
    usage_error "--plan and --emit-plan do not combine";
  if !plan_file <> None && !churn_nodes <> None then
    usage_error "--plan carries its own churn size; drop --churn-nodes";
  (* Resolve what to run: a loaded suite plan, the fuzzer, or the
     requested (default: all) experiments. *)
  let opts =
    { E.Runner.default_opts with E.Runner.churn_nodes = !churn_nodes }
  in
  let suite =
    match !plan_file with
    | None -> None
    | Some file -> (
        match Simplan.load ~path:file with
        | Error e -> usage_error "--plan %s: %s" file e
        | Ok plan -> (
            match Simplan.validate plan with
            | Error errs ->
                usage_error "--plan %s: invalid plan: %s" file
                  (String.concat "; " errs)
            | Ok () -> (
                match plan.Simplan.spec with
                | Simplan.Suite s ->
                    List.iter
                      (fun name ->
                        if E.Runner.find name = None then
                          usage_error "--plan %s: unknown experiment %S" file
                            name)
                      s.Simplan.su_experiments;
                    Some s
                | Simplan.Sim _ ->
                    usage_error
                      "--plan %s is a sim plan; replay it with \
                       bin/drust_sim.exe --plan"
                      file)))
  in
  let requested =
    match suite with
    | Some s -> s.Simplan.su_experiments
    | None -> (
        match positional with
        | [] -> E.Runner.names @ List.map fst local_experiments
        | names -> names)
  in
  let opts =
    match suite with Some s -> E.Runner.opts_of_suite s | None -> opts
  in
  (match !emit_plan with
  | None -> ()
  | Some file ->
      let replayable = List.filter (fun n -> E.Runner.find n <> None) requested in
      if List.length replayable < List.length requested then
        usage_error "--emit-plan covers only: %s"
          (String.concat " " E.Runner.names);
      let plan =
        E.Runner.suite_plan_of opts ~name:(plan_name_of_path file) requested
      in
      (match Simplan.validate plan with
      | Ok () -> ()
      | Error errs ->
          usage_error "--emit-plan %s: %s" file (String.concat "; " errs));
      Simplan.save ~path:file plan;
      Printf.eprintf "[bench] plan written to %s\n%!" file);
  (* The fuzz oracle always runs each plan under its own local
     sanitizer, so --sanitize (accepted for CI-alias symmetry) does not
     additionally install the global hook there. *)
  if !sanitize && not fuzzing then Drust_check.Dsan.install_global ();
  let t0 =
    (Unix.gettimeofday ()
    [@dlint.allow
      "determinism: harness wall-clock total, printed to stderr only — \
       stdout stays comparable across runs"])
  in
  if fuzzing then
    run_fuzz ~count:!fuzz_count ~seed:!fuzz_seed ~max_nodes:!fuzz_max_nodes
      ~out_dir:!out_dir ()
  else
    List.iter
      (fun name ->
        match E.Runner.find name with
        | Some f -> f opts
        | None -> (List.assoc name local_experiments) ())
      requested;
  (* Machine-readable headline rates (docs/BENCHMARKS.md has the schema);
     status lines go to stderr so stdout stays comparable across runs.
     Fuzz batches record no rates and must not write a summary at all:
     clobbering BENCH_summary.json with an empty one would race the
     @bench-diff rule running in the same build directory. *)
  if not fuzzing then begin
    let summary_path =
      match !out_dir with
      | Some dir -> Filename.concat dir "BENCH_summary.json"
      | None -> "BENCH_summary.json"
    in
    E.Report.write_bench_summary ~path:summary_path;
    Printf.eprintf "wrote %s (%d entr(y/ies))\n" summary_path
      (List.length (E.Report.recorded_rates ()))
  end;
  Printf.eprintf "(total harness wall-clock: %.1f s)\n"
    ((Unix.gettimeofday () -. t0)
    [@dlint.allow
      "determinism: harness wall-clock total, printed to stderr only — \
       stdout stays comparable across runs"]);
  if !sanitize && not fuzzing then begin
    let module Dsan = Drust_check.Dsan in
    let total =
      List.fold_left
        (fun acc t -> acc + Dsan.violation_count t)
        0 (Dsan.attached ())
    in
    if total = 0 then
      Printf.eprintf "DSan: no invariant violations (%d cluster(s) checked)\n"
        (List.length (Dsan.attached ()))
    else begin
      List.iter
        (fun r -> prerr_endline (Dsan.report_to_string r))
        (Dsan.global_reports ());
      Printf.eprintf "DSan: %d invariant violation(s)\n" total;
      exit 3
    end
  end
