(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (DRust, OSDI'24) from the simulator, and runs Bechamel
   microbenchmarks of the hot protocol paths.

   Usage:
     dune exec bench/main.exe                        # everything
     dune exec bench/main.exe -- fig5 table2         # selected experiments
     dune exec bench/main.exe -- fig5 --out results  # + CSV files
     dune exec bench/main.exe -- fig5 --jobs 4       # parallel sweep pool

   --jobs N fans independent experiment configurations out over N
   domains (default 1); output is byte-identical for every N (see
   docs/BENCHMARKS.md).

   Experiments: motivation fig5 fig6 fig7 table1 table2 migration
                ablation traffic ycsb latency failover churn trace
                profile micro

   --churn-nodes N sets the churn experiment's cluster size (default
   64; the @churn CI alias runs it at 16).

   --host-time records each gated experiment's host wall-clock cost as
   a host_ms field in BENCH_summary.json (schema v3), which @bench-diff
   gates with a loose tolerance; off by default so plain summaries stay
   machine-independent and byte-identical across --jobs values.

   The [trace] experiment re-runs GEMM on DRust with the span tracer
   enabled and writes a Chrome trace_event JSON (Perfetto-loadable) plus
   a JSONL metrics dump; set DRUST_TRACE=<prefix> to choose the output
   path prefix (default "drust-trace").  The [profile] experiment runs
   the same traced workload through the critical-path profiler: a
   per-segment time breakdown, the top-10 critical paths, and a Chrome
   trace with cross-node flow arrows (prefix default "drust-profile"). *)

module E = Drust_experiments

let run_fig5 () = ignore (E.Fig5.run ())
let run_fig6 () = ignore (E.Fig6.run ())
let run_fig7 () = ignore (E.Fig7.run ())
let run_table1 () = ignore (E.Table1.run ())
let run_table2 () = ignore (E.Table2.run ())
let run_migration () = ignore (E.Migration.run ())
let run_motivation () = ignore (E.Motivation.run ())
let run_ablation () = ignore (E.Ablation.run ())
let run_traffic () = ignore (E.Traffic.run ())
let run_ycsb () = ignore (E.Ycsb_suite.run ())
let run_latency () = ignore (E.Latency.run ())
let run_failover () = ignore (E.Failover.run ())

(* Node count for the churn run: 64 by default (the paper-scale
   configuration), dialed down to 16 by the @churn CI alias. *)
let churn_nodes = ref None
let run_churn () = ignore (E.Churn.run ?nodes:!churn_nodes ())

(* ------------------------------------------------------------------ *)
(* Observability demo: one traced run, exported for Perfetto.          *)

let run_trace () =
  let module B = E.Bench_setup in
  let module Cluster = Drust_machine.Cluster in
  let module Metrics = Drust_obs.Metrics in
  let module Span = Drust_obs.Span in
  E.Report.section "Observability: traced GEMM on DRust (4 nodes)";
  let prefix =
    match Sys.getenv_opt "DRUST_TRACE" with
    | Some p when p <> "" && p <> "0" && p <> "1" -> p
    | _ -> "drust-trace"
  in
  let params = B.testbed ~nodes:4 () in
  let cluster = Cluster.create params in
  let spans = Cluster.spans cluster in
  Span.enable spans;
  let before = Metrics.snapshot (Cluster.metrics cluster) in
  let backend = B.make_backend B.Drust cluster in
  let r =
    Drust_gemm.Gemm.run ~cluster ~backend Drust_gemm.Gemm.default_config
  in
  let after = Metrics.snapshot (Cluster.metrics cluster) in
  E.Report.note
    (Printf.sprintf "GEMM: %.0f ops in %.6f virtual s"
       r.Drust_appkit.Appkit.ops r.Drust_appkit.Appkit.elapsed);
  E.Report.metrics_table (Metrics.diff ~before ~after);
  List.iter
    (fun (cat, st) ->
      E.Report.note
        (Printf.sprintf "spans[%-10s] %6d complete, %.6f virtual s total" cat
           st.Span.d_count st.Span.d_total))
    (Span.duration_stats spans);
  let trace_path = prefix ^ ".trace.json" in
  let metrics_path = prefix ^ ".metrics.jsonl" in
  Drust_obs.Export.write_chrome_trace ~path:trace_path spans;
  Drust_obs.Export.write_metrics_jsonl ~time:(Cluster.now cluster)
    ~path:metrics_path after;
  E.Report.note
    (Printf.sprintf "%d trace events -> %s (load in ui.perfetto.dev)"
       (Span.count spans) trace_path);
  E.Report.note (Printf.sprintf "metrics snapshot -> %s" metrics_path)

(* ------------------------------------------------------------------ *)
(* Critical-path profile: traced GEMM, causally assembled.             *)

let run_profile () =
  let module B = E.Bench_setup in
  let module Cluster = Drust_machine.Cluster in
  let module Span = Drust_obs.Span in
  let module Cp = Drust_obs.Critical_path in
  E.Report.section "Profile: critical paths of traced GEMM on DRust (4 nodes)";
  let prefix =
    match Sys.getenv_opt "DRUST_TRACE" with
    | Some p when p <> "" && p <> "0" && p <> "1" -> p
    | _ -> "drust-profile"
  in
  let params = B.testbed ~nodes:4 () in
  let cluster = Cluster.create params in
  let spans = Cluster.spans cluster in
  Span.enable spans;
  let backend = B.make_backend B.Drust cluster in
  let r =
    Drust_gemm.Gemm.run ~cluster ~backend Drust_gemm.Gemm.default_config
  in
  E.Report.note
    (Printf.sprintf "GEMM: %.0f ops in %.6f virtual s"
       r.Drust_appkit.Appkit.ops r.Drust_appkit.Appkit.elapsed);
  let events = Span.events spans in
  let paths = Cp.analyze events in
  (* Where did the virtual time go, across every profiled operation? *)
  let totals =
    List.map
      (fun seg ->
        ( seg,
          List.fold_left
            (fun acc p -> acc +. List.assoc seg p.Cp.segments)
            0.0 paths ))
      Cp.all_segments
  in
  let grand = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 totals in
  E.Report.table
    ~header:[ "segment"; "total (us)"; "share" ]
    ~rows:
      (List.map
         (fun (seg, d) ->
           [
             Cp.segment_name seg;
             Printf.sprintf "%.3f" (d *. 1e6);
             (if grand > 0.0 then E.Report.cell_pct (d /. grand) else "-");
           ])
         totals);
  E.Report.note
    (Printf.sprintf "%d operation(s) profiled; top critical paths:"
       (List.length paths));
  print_string (Cp.report ~k:10 events);
  let trace_path = prefix ^ ".trace.json" in
  Drust_obs.Export.write_chrome_trace ~path:trace_path spans;
  E.Report.note
    (Printf.sprintf
       "%d trace events (with cross-node flow arrows) -> %s (load in \
        ui.perfetto.dev)"
       (Span.count spans) trace_path);
  (* Host engine throughput: dispatched events per wall-clock second,
     untraced (the zero-allocation fast path) and traced.  Wall-clock
     numbers are machine-dependent, so they go to stderr — stdout must
     stay byte-identical across machines and runs (docs/PERFORMANCE.md
     explains how to read these). *)
  Printf.eprintf "host engine throughput (wall-clock, machine-dependent):\n";
  let host_measure ~label ~traced =
    let cluster = Cluster.create (B.testbed ~nodes:4 ()) in
    if traced then Span.enable (Cluster.spans cluster);
    let backend = B.make_backend B.Drust cluster in
    let t0 =
      (Unix.gettimeofday ()
      [@dlint.allow
        "determinism: the profile host section is explicitly wall-clock \
         and machine-dependent; it prints to stderr only"])
    in
    ignore
      (Drust_gemm.Gemm.run ~cluster ~backend Drust_gemm.Gemm.default_config);
    let dt =
      (Unix.gettimeofday () -. t0
      [@dlint.allow
        "determinism: the profile host section is explicitly wall-clock \
         and machine-dependent; it prints to stderr only"])
    in
    let n = Drust_sim.Engine.dispatched (Cluster.engine cluster) in
    Printf.eprintf "  %-18s %9d events in %6.3f s = %.3g events/s\n" label n dt
      (float_of_int n /. dt)
  in
  host_measure ~label:"gemm/4n untraced" ~traced:false;
  host_measure ~label:"gemm/4n traced" ~traced:true

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: wall-clock cost of the hot OCaml paths
   behind each experiment — one Test.make per table/figure family.     *)

let bechamel_tests () =
  let open Bechamel in
  let rng = Drust_util.Rng.create ~seed:7 in
  let deref_model =
    Test.make ~name:"table2:deref-cost-model" (Staged.stage (fun () ->
        ignore (Drust_core.Deref_cost.sample rng Drust_core.Deref_cost.Drust_box)))
  in
  let gaddr_ops =
    Test.make ~name:"protocol:gaddr-color-ops" (Staged.stage (fun () ->
        let g = Drust_memory.Gaddr.make ~node:3 ~offset:4096 in
        let g = Drust_memory.Gaddr.with_color g 7 in
        ignore (Drust_memory.Gaddr.clear_color (Drust_memory.Gaddr.bump_color g))))
  in
  let cache_ops =
    let cache = Drust_memory.Cache.create ~node:0 () in
    let tag : int Drust_util.Univ.tag = Drust_util.Univ.create_tag ~name:"b" in
    let g = Drust_memory.Gaddr.make ~node:1 ~offset:64 in
    let copy = Drust_memory.Cache.insert cache g ~size:64 (Drust_util.Univ.pack tag 1) in
    ignore copy;
    Test.make ~name:"fig5:cache-lookup" (Staged.stage (fun () ->
        ignore (Drust_memory.Cache.lookup cache g)))
  in
  let engine_event =
    Test.make ~name:"sim:schedule-and-step" (Staged.stage (fun () ->
        let e = Drust_sim.Engine.create () in
        Drust_sim.Engine.schedule e ~at:1.0 (fun () -> ());
        ignore (Drust_sim.Engine.step e)))
  in
  let protocol_epoch =
    Test.make ~name:"fig6:protocol-local-write-epoch" (Staged.stage (fun () ->
        let params =
          { Drust_machine.Params.default with Drust_machine.Params.nodes = 1 }
        in
        let cluster = Drust_machine.Cluster.create params in
        ignore
          (Drust_sim.Engine.spawn
             (Drust_machine.Cluster.engine cluster)
             (fun () ->
               let ctx = Drust_machine.Ctx.make cluster ~node:0 in
               let o =
                 Drust_core.Protocol.create ctx ~size:64
                   (Drust_util.Univ.pack
                      (Drust_util.Univ.create_tag ~name:"x")
                      0)
               in
               Drust_core.Protocol.owner_write ctx o
                 (Drust_util.Univ.pack (Drust_util.Univ.create_tag ~name:"y") 1)));
        Drust_machine.Cluster.run cluster))
  in
  Test.make_grouped ~name:"drust"
    [ deref_model; gaddr_ops; cache_ops; engine_event; protocol_epoch ]

let run_micro () =
  print_newline ();
  print_endline "=== Bechamel microbenchmarks (host wall-clock) ===";
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  (* Simple per-test mean report (avoids the notty TTY renderer, which
     does not work when output is piped to a file). *)
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  (* Name-sorted, not bucket-ordered: the report is part of stdout. *)
  Drust_util.Tables.sorted_bindings results ~cmp:String.compare
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Printf.printf "  %-40s %10.1f ns/run\n" name est
         | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)

let experiments =
  [
    ("motivation", run_motivation);
    ("table1", run_table1);
    ("table2", run_table2);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("migration", run_migration);
    ("ablation", run_ablation);
    ("traffic", run_traffic);
    ("ycsb", run_ycsb);
    ("latency", run_latency);
    ("failover", run_failover);
    ("churn", run_churn);
    ("trace", run_trace);
    ("profile", run_profile);
    ("micro", run_micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let out_dir = ref None in
  let sanitize = ref false in
  let rec split_args acc = function
    | "--out" :: dir :: rest ->
        out_dir := Some dir;
        E.Report.set_csv_dir (Some dir);
        split_args acc rest
    | "--sanitize" :: rest ->
        sanitize := true;
        split_args acc rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> E.Parallel.set_default_jobs j
        | _ ->
            prerr_endline "--jobs expects a positive integer";
            exit 1);
        split_args acc rest
    | "--host-time" :: rest ->
        E.Report.set_host_time_recording true;
        split_args acc rest
    | "--churn-nodes" :: n :: rest ->
        (match int_of_string_opt n with
        | Some c when c >= 16 -> churn_nodes := Some c
        | _ ->
            prerr_endline "--churn-nodes expects an integer >= 16";
            exit 1);
        split_args acc rest
    | x :: rest -> split_args (x :: acc) rest
    | [] -> List.rev acc
  in
  let requested =
    match split_args [] args with
    | [] -> List.map fst experiments
    | names -> names
  in
  if !sanitize then Drust_check.Dsan.install_global ();
  let t0 =
    (Unix.gettimeofday ()
    [@dlint.allow
      "determinism: harness wall-clock total, printed to stderr only — \
       stdout stays comparable across runs"])
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested;
  (* Machine-readable headline rates (docs/BENCHMARKS.md has the schema);
     status lines go to stderr so stdout stays comparable across runs. *)
  let summary_path =
    match !out_dir with
    | Some dir -> Filename.concat dir "BENCH_summary.json"
    | None -> "BENCH_summary.json"
  in
  E.Report.write_bench_summary ~path:summary_path;
  Printf.eprintf "wrote %s (%d entr(y/ies))\n" summary_path
    (List.length (E.Report.recorded_rates ()));
  Printf.eprintf "(total harness wall-clock: %.1f s)\n"
    ((Unix.gettimeofday () -. t0)
    [@dlint.allow
      "determinism: harness wall-clock total, printed to stderr only — \
       stdout stays comparable across runs"]);
  if !sanitize then begin
    let module Dsan = Drust_check.Dsan in
    let total =
      List.fold_left
        (fun acc t -> acc + Dsan.violation_count t)
        0 (Dsan.attached ())
    in
    if total = 0 then
      Printf.eprintf "DSan: no invariant violations (%d cluster(s) checked)\n"
        (List.length (Dsan.attached ()))
    else begin
      List.iter
        (fun r -> prerr_endline (Dsan.report_to_string r))
        (Dsan.global_reports ());
      Printf.eprintf "DSan: %d invariant violation(s)\n" total;
      exit 3
    end
  end
