(* Headless runner for the failover chaos experiment: crashes a primary
   mid-workload and verifies detection, automatic promotion, recovery,
   and seed-determinism.  Wired into the @smoke alias.

   Run with:  dune exec bench/failover.exe *)

let () = ignore (Drust_experiments.Failover.run ())
