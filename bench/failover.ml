(* Headless runner for the failover chaos experiment: crashes a primary
   mid-workload and verifies detection, automatic promotion, recovery,
   and seed-determinism.  Wired into the @smoke alias, which passes
   --sanitize so the DSan shadow-state checker cross-checks the whole
   failure/promotion sequence on every test run.

   Run with:  dune exec bench/failover.exe -- [--sanitize] [--jobs N]
                [--summary PATH]

   --summary writes the recorded headline rates (and op-latency
   percentiles) as a BENCH_summary.json to PATH — the input of the
   tools/bench_diff.exe regression gate (@bench-diff alias).

   --jobs >= 2 makes this a parallel chaos run: the experiment's two
   determinism-check clusters execute on separate domains, each with
   its own sanitizer, and must still produce bit-identical results. *)

module Dsan = Drust_check.Dsan

let () =
  let argv = Array.to_list Sys.argv in
  let sanitize = List.mem "--sanitize" argv in
  let rec jobs_of = function
    | "--jobs" :: n :: _ -> int_of_string_opt n
    | _ :: rest -> jobs_of rest
    | [] -> None
  in
  (match jobs_of argv with
  | Some j when j >= 1 -> Drust_experiments.Parallel.set_default_jobs j
  | Some _ ->
      prerr_endline "--jobs expects a positive integer";
      exit 1
  | None -> ());
  let rec summary_of = function
    | "--summary" :: path :: _ -> Some path
    | _ :: rest -> summary_of rest
    | [] -> None
  in
  if sanitize then Dsan.install_global ();
  ignore (Drust_experiments.Failover.run ());
  (match summary_of argv with
  | Some path ->
      Drust_experiments.Report.write_bench_summary ~path;
      Printf.eprintf "wrote %s\n" path
  | None -> ());
  if sanitize then begin
    let total =
      List.fold_left
        (fun acc t -> acc + Dsan.violation_count t)
        0 (Dsan.attached ())
    in
    if total = 0 then
      Printf.eprintf
        "DSan: chaos failover completed with zero violations (%d cluster(s) \
         checked)\n"
        (List.length (Dsan.attached ()))
    else begin
      List.iter
        (fun r -> prerr_endline (Dsan.report_to_string r))
        (Dsan.global_reports ());
      Printf.eprintf "DSan: %d invariant violation(s)\n" total;
      exit 3
    end
  end
