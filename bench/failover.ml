(* Headless runner for the failover chaos experiment: crashes a primary
   mid-workload and verifies detection, automatic promotion, recovery,
   and seed-determinism.  Wired into the @smoke alias, which passes
   --sanitize so the DSan shadow-state checker cross-checks the whole
   failure/promotion sequence on every test run.

   Run with:  dune exec bench/failover.exe -- [--sanitize] *)

module Dsan = Drust_check.Dsan

let () =
  let sanitize = Array.exists (String.equal "--sanitize") Sys.argv in
  if sanitize then Dsan.install_global ();
  ignore (Drust_experiments.Failover.run ());
  if sanitize then begin
    let total =
      List.fold_left
        (fun acc t -> acc + Dsan.violation_count t)
        0 (Dsan.attached ())
    in
    if total = 0 then
      Printf.eprintf
        "DSan: chaos failover completed with zero violations (%d cluster(s) \
         checked)\n"
        (List.length (Dsan.attached ()))
    else begin
      List.iter
        (fun r -> prerr_endline (Dsan.report_to_string r))
        (Dsan.global_reports ());
      Printf.eprintf "DSan: %d invariant violation(s)\n" total;
      exit 3
    end
  end
